#include "core/plan_exec.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <set>
#include <utility>
#include <variant>
#include <vector>

#include "core/select.h"
#include "storage/delta_store.h"
#include "util/timer.h"

namespace wastenot::core {

namespace {

// ---------- shared exact evaluation --------------------------------------
//
// One exact evaluator serves the classic general path, the streaming
// general path and the A&R general refinement phase, so every mode agrees
// on multi-join results by construction. Access to values goes through an
// accessor (base columns for classic/streaming, residual reconstruction
// for A&R), theta right sides through a sorted-values provider.

using ExactGetFn = std::function<int64_t(uint32_t hop, const std::string& column,
                                         uint64_t row)>;
using RightValuesFn = std::function<std::vector<int64_t>(
    const std::string& table, const std::string& column)>;

/// Evaluates `plan` exactly over `initial` fact rows (all rows when null):
/// walks the op sequence row at a time (filters reject, FK joins extend the
/// hop-row tuple, theta nodes test EXISTS against the sorted right values),
/// groups survivors by exact key tuple, and aggregates with the classic
/// engine's semantics (count counts non-zero expression values, avg stores
/// the sum, min/max report 0 for empty groups). Canonical key order.
QueryResult EvalPlanExact(const PhysicalPlan& plan, uint64_t fact_rows,
                          const ExactGetFn& get, const RightValuesFn& rights,
                          const cs::OidVec* initial) {
  std::vector<std::vector<int64_t>> theta_rights;
  for (const PlanOp& op : plan.ops) {
    if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      theta_rights.push_back(rights(t->right_table, t->right_column));
    }
  }

  const uint32_t num_hops = plan.num_hops();
  QueryResult result;
  for (const ColumnRef& k : plan.group_agg.group_by) {
    result.key_names.push_back(k.column);
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    result.agg_labels.push_back(a.label);
  }

  std::vector<uint64_t> flat_hops;  // [survivor * num_hops + hop]
  std::vector<uint64_t> hop_rows(num_hops);
  auto row_passes = [&](uint64_t id) -> bool {
    hop_rows[0] = id;
    uint32_t next_hop = 1;
    uint64_t theta_idx = 0;
    for (const PlanOp& op : plan.ops) {
      if (const auto* f = std::get_if<FilterNode>(&op)) {
        if (!f->range.Contains(get(f->hop, f->column, hop_rows[f->hop]))) {
          return false;
        }
      } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
        hop_rows[next_hop++] = static_cast<uint64_t>(
            get(j->fk_hop, j->fk_column, hop_rows[j->fk_hop]) - j->fk_base);
      } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
        const std::vector<int64_t>& rv = theta_rights[theta_idx++];
        if (rv.empty()) return false;
        const int64_t v = get(t->left_hop, t->left_column, hop_rows[t->left_hop]);
        switch (t->op) {
          case ThetaOp::kLess:
            if (!(v < rv.back())) return false;
            break;
          case ThetaOp::kLessEqual:
            if (!(v <= rv.back())) return false;
            break;
          case ThetaOp::kBandWithin: {
            auto it = std::lower_bound(rv.begin(), rv.end(), v - t->band);
            if (it == rv.end() || *it > v + t->band) return false;
            break;
          }
        }
      }  // ProjectNode: manifest marker, nothing to evaluate.
    }
    return true;
  };

  uint64_t selected = 0;
  auto consider = [&](uint64_t id) {
    if (!row_passes(id)) return;
    for (uint32_t h = 0; h < num_hops; ++h) flat_hops.push_back(hop_rows[h]);
    ++selected;
  };
  if (initial != nullptr) {
    for (const cs::oid_t id : *initial) consider(id);
  } else {
    for (uint64_t id = 0; id < fact_rows; ++id) consider(id);
  }
  result.selected_rows = selected;

  // --- grouping by exact key tuple ---------------------------------------
  const bool grouped = !plan.group_agg.group_by.empty();
  std::vector<uint32_t> gids(selected, 0);
  uint64_t num_groups = 1;
  std::vector<std::vector<int64_t>> keys_of_group;
  if (grouped) {
    num_groups = 0;
    std::map<std::vector<int64_t>, uint32_t> group_of;
    std::vector<int64_t> key(plan.group_agg.group_by.size());
    for (uint64_t i = 0; i < selected; ++i) {
      for (uint64_t k = 0; k < key.size(); ++k) {
        const ColumnRef& ref = plan.group_agg.group_by[k];
        key[k] = get(ref.hop, ref.column, flat_hops[i * num_hops + ref.hop]);
      }
      auto [it, inserted] =
          group_of.try_emplace(key, static_cast<uint32_t>(num_groups));
      if (inserted) {
        keys_of_group.push_back(key);
        ++num_groups;
      }
      gids[i] = it->second;
    }
  }

  result.group_counts.assign(num_groups, 0);
  for (uint64_t i = 0; i < selected; ++i) result.group_counts[gids[i]] += 1;

  // --- aggregates ---------------------------------------------------------
  std::vector<std::vector<int64_t>> agg_columns;  // [agg][group]
  for (const PlanAggregate& agg : plan.group_agg.aggregates) {
    // Per-row expression value: constant * Π (offset ± col); empty = 1.
    std::vector<int64_t> values(selected, 1);
    for (const PlanTerm& term : agg.terms) {
      for (uint64_t i = 0; i < selected; ++i) {
        const int64_t v =
            get(term.col.hop, term.col.column, flat_hops[i * num_hops + term.col.hop]);
        values[i] *= term.sign >= 0 ? term.offset + v : term.offset - v;
      }
    }
    if (agg.constant != 1) {
      for (auto& v : values) v *= agg.constant;
    }
    if (agg.filter.has_value()) {
      const ColumnRef& ref = agg.filter->col;
      for (uint64_t i = 0; i < selected; ++i) {
        if (!agg.filter->range.Contains(
                get(ref.hop, ref.column, flat_hops[i * num_hops + ref.hop]))) {
          values[i] = 0;
        }
      }
    }

    switch (agg.func) {
      case AggFunc::kCount: {
        std::vector<int64_t> counts(num_groups, 0);
        if (agg.terms.empty() && !agg.filter.has_value()) {
          for (uint64_t i = 0; i < selected; ++i) counts[gids[i]] += 1;
        } else {
          for (uint64_t i = 0; i < selected; ++i) {
            counts[gids[i]] += values[i] != 0 ? 1 : 0;
          }
        }
        agg_columns.push_back(std::move(counts));
        break;
      }
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        std::vector<int64_t> sums(num_groups, 0);
        for (uint64_t i = 0; i < selected; ++i) sums[gids[i]] += values[i];
        agg_columns.push_back(std::move(sums));
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        std::vector<int64_t> extrema(num_groups, 0);
        std::vector<uint8_t> seen(num_groups, 0);
        for (uint64_t i = 0; i < selected; ++i) {
          const uint32_t g = gids[i];
          if (!seen[g]) {
            extrema[g] = values[i];
            seen[g] = 1;
          } else {
            extrema[g] = agg.func == AggFunc::kMin
                             ? std::min(extrema[g], values[i])
                             : std::max(extrema[g], values[i]);
          }
        }
        agg_columns.push_back(std::move(extrema));
        break;
      }
    }
  }

  // --- materialize --------------------------------------------------------
  result.group_keys =
      grouped ? std::move(keys_of_group)
              : std::vector<std::vector<int64_t>>(1);
  result.agg_values.resize(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    for (const auto& col : agg_columns) result.agg_values[g].push_back(col[g]);
  }
  result.SortByKeys();
  return result;
}

// ---------- general-path structural checks -------------------------------

/// Hop references must name hops the plan has joined by that point (ops)
/// or at all (group/aggregate stage) — the part of ValidatePlan that needs
/// no catalog, shared by the A&R path (which has no cs::Database).
Status CheckShape(const PhysicalPlan& plan) {
  const uint32_t num_hops = plan.num_hops();
  uint32_t have = 1;
  auto bad = [](const std::string& col, uint32_t hop) {
    return Status::InvalidArgument(
        "column reference h" + std::to_string(hop) + "." + col +
        " names a hop the plan has not joined");
  };
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      if (f->hop >= have) return bad(f->column, f->hop);
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      if (j->fk_hop >= have) return bad(j->fk_column, j->fk_hop);
      ++have;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      if (t->left_hop >= have) return bad(t->left_column, t->left_hop);
    } else if (const auto* p = std::get_if<ProjectNode>(&op)) {
      for (const ColumnRef& c : p->columns) {
        if (c.hop >= have) return bad(c.column, c.hop);
      }
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) {
    if (k.hop >= num_hops) return bad(k.column, k.hop);
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    for (const PlanTerm& t : a.terms) {
      if (t.col.hop >= num_hops) return bad(t.col.column, t.col.hop);
    }
    if (a.filter.has_value() && a.filter->col.hop >= num_hops) {
      return bad(a.filter->col.column, a.filter->col.hop);
    }
  }
  return Status::OK();
}

// ---------- delta overlay -------------------------------------------------
//
// Appended rows not yet absorbed into the base table (storage::DeltaBatch)
// are host-resident and exact, so the delta side of a query is EvalPlanExact
// with a hop-0 accessor reading the batch — dimension hops and theta right
// sides still come from the base tables. The delta part merges into the
// base result at the result level, by exact key tuple; every aggregate the
// engines support combines losslessly that way (count/sum/avg-sums add,
// min/max take extrema gated on per-side group counts), which is what makes
// base+delta bit-identical to executing a table that absorbed the rows.

/// Structural delta checks: every hop-0 reference must be a delta column,
/// and the scanned table must not reappear as a join dimension or theta
/// right side (the delta rows would have to be unioned there too).
Status CheckDeltaPlan(const PhysicalPlan& plan,
                      const storage::DeltaBatch& delta) {
  auto need = [&](const std::string& column) -> Status {
    if (delta.ColumnIndex(column) < 0) {
      return Status::InvalidArgument("delta rows for '" + plan.scan.table +
                                     "' do not carry column '" + column + "'");
    }
    return Status::OK();
  };
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      if (f->hop == 0) WN_RETURN_IF_ERROR(need(f->column));
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      if (j->dim_table == plan.scan.table) {
        return Status::Unsupported(
            "delta execution cannot join the scanned table to itself");
      }
      if (j->fk_hop == 0) WN_RETURN_IF_ERROR(need(j->fk_column));
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      if (t->right_table == plan.scan.table) {
        return Status::Unsupported(
            "delta execution cannot theta-join against the scanned table");
      }
      if (t->left_hop == 0) WN_RETURN_IF_ERROR(need(t->left_column));
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) {
    if (k.hop == 0) WN_RETURN_IF_ERROR(need(k.column));
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    for (const PlanTerm& t : a.terms) {
      if (t.col.hop == 0) WN_RETURN_IF_ERROR(need(t.col.column));
    }
    if (a.filter.has_value() && a.filter->col.hop == 0) {
      WN_RETURN_IF_ERROR(need(a.filter->col.column));
    }
  }
  return Status::OK();
}

/// How the delta evaluation reaches base data: values of hops >= 1, sorted
/// theta right sides, and per-hop row counts (for FK range validation).
struct DeltaHopAccess {
  ExactGetFn get_base;
  RightValuesFn rights;
  std::function<uint64_t(uint32_t hop)> hop_rows;
};

/// Evaluates the delta side of `plan` exactly: hop 0 reads the batch,
/// everything else goes through `access`. Hop-0 FK values are validated
/// against the dimension row count up front (InvalidArgument names the
/// first bad row) — base-table FK values carry the base's own guarantees.
StatusOr<QueryResult> EvalDeltaPart(const PhysicalPlan& plan,
                                    const storage::DeltaBatch& delta,
                                    const DeltaHopAccess& access) {
  WN_RETURN_IF_ERROR(CheckShape(plan));
  WN_RETURN_IF_ERROR(CheckDeltaPlan(plan, delta));

  uint32_t hop = 1;
  for (const PlanOp& op : plan.ops) {
    const auto* j = std::get_if<FkJoinNode>(&op);
    if (j == nullptr) continue;
    if (j->fk_hop == 0) {
      const int idx = delta.ColumnIndex(j->fk_column);
      const uint64_t dim_rows = access.hop_rows(hop);
      for (uint64_t r = 0; r < delta.num_rows(); ++r) {
        const int64_t oid = delta.Get(r, static_cast<uint64_t>(idx)) - j->fk_base;
        if (oid < 0 || static_cast<uint64_t>(oid) >= dim_rows) {
          return Status::InvalidArgument(
              "delta row " + std::to_string(delta.first_row_index() + r) +
              ": FK '" + j->fk_column + "' = " +
              std::to_string(delta.Get(r, static_cast<uint64_t>(idx))) +
              " is outside dimension '" + j->dim_table + "'");
        }
      }
    }
    ++hop;
  }

  const ExactGetFn get = [&](uint32_t h, const std::string& column,
                             uint64_t row) -> int64_t {
    if (h == 0) {
      return delta.Get(row,
                       static_cast<uint64_t>(delta.ColumnIndex(column)));
    }
    return access.get_base(h, column, row);
  };
  return EvalPlanExact(plan, delta.num_rows(), get, access.rights, nullptr);
}

/// Delta evaluation against base cs::Tables (classic/streaming modes). Run
/// after base execution, so `plan` is already validated against `db`.
StatusOr<QueryResult> EvalDeltaClassic(const PhysicalPlan& plan,
                                       const storage::DeltaBatch& delta,
                                       const cs::Database& db) {
  std::vector<const cs::Table*> hop_tables;
  for (const std::string& t : HopTables(plan)) {
    hop_tables.push_back(&db.table(t));
  }
  DeltaHopAccess access;
  access.get_base = [hop_tables](uint32_t hop, const std::string& column,
                                 uint64_t row) {
    return hop_tables[hop]->column(column).Get(row);
  };
  access.rights = [&db](const std::string& table, const std::string& column) {
    const cs::Column& col = db.table(table).column(column);
    std::vector<int64_t> out(col.size());
    for (uint64_t i = 0; i < col.size(); ++i) out[i] = col.Get(i);
    std::sort(out.begin(), out.end());
    return out;
  };
  access.hop_rows = [hop_tables](uint32_t hop) {
    return hop_tables[hop]->num_rows();
  };
  return EvalDeltaPart(plan, delta, access);
}

/// Delta evaluation against decomposed base tables (A&R mode): dimension
/// values come from exact residual reconstruction. Runs *before* base
/// execution (the progressive hook needs the delta part at the phase
/// boundary), so it resolves and checks its own references.
StatusOr<QueryResult> EvalDeltaAr(const PhysicalPlan& plan,
                                  const storage::DeltaBatch& delta,
                                  const BwdTableMap& dims) {
  std::vector<const bwd::BwdTable*> hops{nullptr};  // hop 0 = the delta
  std::map<std::string, const bwd::BwdTable*> right_tables;
  for (const PlanOp& op : plan.ops) {
    if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      auto it = dims.find(j->dim_table);
      if (it == dims.end() || it->second == nullptr) {
        return Status::InvalidArgument("plan joins table '" + j->dim_table +
                                       "' but no decomposed table was given");
      }
      hops.push_back(it->second);
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      auto it = dims.find(t->right_table);
      if (it == dims.end() || it->second == nullptr) {
        return Status::InvalidArgument("plan references table '" +
                                       t->right_table +
                                       "' but no decomposed table was given");
      }
      right_tables[t->right_table] = it->second;
    }
  }
  // Existence checks for every base-side reference the evaluation gathers
  // (hop-0 references are checked against the batch in CheckDeltaPlan).
  auto check = [](const bwd::BwdTable* table,
                  const std::string& column) -> Status {
    if (table != nullptr && !table->HasColumn(column)) {
      return Status::NotFound("column '" + column + "' is not decomposed in '" +
                              table->name() + "'");
    }
    return Status::OK();
  };
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      if (f->hop > 0) WN_RETURN_IF_ERROR(check(hops[f->hop], f->column));
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      if (j->fk_hop > 0) WN_RETURN_IF_ERROR(check(hops[j->fk_hop], j->fk_column));
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      if (t->left_hop > 0) {
        WN_RETURN_IF_ERROR(check(hops[t->left_hop], t->left_column));
      }
      WN_RETURN_IF_ERROR(check(right_tables.at(t->right_table), t->right_column));
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) {
    if (k.hop > 0) WN_RETURN_IF_ERROR(check(hops[k.hop], k.column));
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    for (const PlanTerm& t : a.terms) {
      if (t.col.hop > 0) WN_RETURN_IF_ERROR(check(hops[t.col.hop], t.col.column));
    }
    if (a.filter.has_value() && a.filter->col.hop > 0) {
      WN_RETURN_IF_ERROR(
          check(hops[a.filter->col.hop], a.filter->col.column));
    }
  }

  DeltaHopAccess access;
  access.get_base = [hops](uint32_t hop, const std::string& column,
                           uint64_t row) {
    return hops[hop]->column(column).Reconstruct(row);
  };
  access.rights = [right_tables](const std::string& table,
                                 const std::string& column) {
    const bwd::BwdColumn& c = right_tables.at(table)->column(column);
    std::vector<int64_t> out(c.size());
    for (uint64_t i = 0; i < out.size(); ++i) out[i] = c.Reconstruct(i);
    std::sort(out.begin(), out.end());
    return out;
  };
  access.hop_rows = [hops](uint32_t hop) { return hops[hop]->num_rows(); };
  return EvalDeltaPart(plan, delta, access);
}

/// Merges the delta part into the base exact result, per exact key tuple.
/// Count/sum/avg-sum add; min/max take the extremum, gated on per-side
/// group counts (an empty side contributes nothing, matching the engines'
/// report-0-for-empty convention); group counts and selected rows add; new
/// delta-only groups append and the result re-sorts to canonical order.
void MergeDeltaResult(const PhysicalPlan& plan, const QueryResult& delta,
                      QueryResult* base) {
  const std::vector<PlanAggregate>& aggs = plan.group_agg.aggregates;
  base->selected_rows += delta.selected_rows;

  auto combine = [&](uint64_t d, uint64_t g) {
    for (uint64_t i = 0; i < aggs.size(); ++i) {
      int64_t& b = base->agg_values[g][i];
      const int64_t dv = delta.agg_values[d][i];
      switch (aggs[i].func) {
        case AggFunc::kCount:
        case AggFunc::kSum:
        case AggFunc::kAvg:
          b += dv;
          break;
        case AggFunc::kMin:
          if (base->group_counts[g] == 0) {
            b = dv;
          } else if (delta.group_counts[d] != 0) {
            b = std::min(b, dv);
          }
          break;
        case AggFunc::kMax:
          if (base->group_counts[g] == 0) {
            b = dv;
          } else if (delta.group_counts[d] != 0) {
            b = std::max(b, dv);
          }
          break;
      }
    }
    base->group_counts[g] += delta.group_counts[d];
  };

  if (plan.group_agg.group_by.empty()) {
    // Ungrouped: both sides always report exactly one group.
    combine(0, 0);
    return;
  }
  if (delta.num_groups() == 0) return;
  std::map<std::vector<int64_t>, uint64_t> index;
  for (uint64_t g = 0; g < base->num_groups(); ++g) {
    index[base->group_keys[g]] = g;
  }
  for (uint64_t d = 0; d < delta.num_groups(); ++d) {
    auto it = index.find(delta.group_keys[d]);
    if (it != index.end()) {
      combine(d, it->second);
    } else {
      base->group_keys.push_back(delta.group_keys[d]);
      base->agg_values.push_back(delta.agg_values[d]);
      base->group_counts.push_back(delta.group_counts[d]);
    }
  }
  base->SortByKeys();
}

/// Merges the (exact) delta part into an approximate answer, keeping it
/// sound for the merged exact result: each delta group lands in the first
/// approx group whose key bounds contain its exact keys (digit intervals
/// partition the key space, so containment identifies the digit group) or
/// appends as a new point-bounds group. Count/sum bounds shift by the
/// exact delta value; avg bounds hull-extend with the delta average (the
/// merged average is a convex combination of the two sides); min (max)
/// upper (lower) ends clamp to the delta extremum, which the merged
/// extremum can never exceed (fall below).
void MergeDeltaApprox(const PhysicalPlan& plan, const QueryResult& delta,
                      ApproximateAnswer* approx) {
  const std::vector<PlanAggregate>& aggs = plan.group_agg.aggregates;
  approx->row_count.lo += static_cast<int64_t>(delta.selected_rows);
  approx->row_count.hi += static_cast<int64_t>(delta.selected_rows);

  for (uint64_t d = 0; d < delta.num_groups(); ++d) {
    if (delta.group_counts[d] == 0) continue;  // nothing selected: no-op
    const std::vector<int64_t>& key = delta.group_keys[d];
    const int64_t dcount = delta.group_counts[d];

    uint64_t g = approx->num_groups();
    for (uint64_t c = 0; c < approx->num_groups(); ++c) {
      bool contains = true;
      for (uint64_t k = 0; k < key.size() && contains; ++k) {
        contains = approx->key_bounds[c][k].Contains(key[k]);
      }
      if (contains) {
        g = c;
        break;
      }
    }

    if (g == approx->num_groups()) {
      // Delta-only group: exact point bounds.
      std::vector<ValueBounds> kb;
      for (const int64_t k : key) kb.push_back(ValueBounds::Exact(k));
      std::vector<ValueBounds> ab;
      for (uint64_t i = 0; i < aggs.size(); ++i) {
        const int64_t dv = delta.agg_values[d][i];
        ab.push_back(aggs[i].func == AggFunc::kAvg
                         ? ValueBounds{FloorDiv(dv, dcount),
                                       CeilDivSigned(dv, dcount)}
                         : ValueBounds::Exact(dv));
      }
      approx->key_bounds.push_back(std::move(kb));
      approx->agg_bounds.push_back(std::move(ab));
      continue;
    }

    for (uint64_t i = 0; i < aggs.size(); ++i) {
      ValueBounds& b = approx->agg_bounds[g][i];
      const int64_t dv = delta.agg_values[d][i];
      switch (aggs[i].func) {
        case AggFunc::kCount:
        case AggFunc::kSum:
          b.lo += dv;
          b.hi += dv;
          break;
        case AggFunc::kAvg:
          b.lo = std::min(b.lo, FloorDiv(dv, dcount));
          b.hi = std::max(b.hi, CeilDivSigned(dv, dcount));
          break;
        case AggFunc::kMin:
          b.lo = std::min(b.lo, dv);
          b.hi = dv;  // the merged minimum can never exceed the delta's
          break;
        case AggFunc::kMax:
          b.lo = dv;  // the merged maximum can never fall below the delta's
          b.hi = std::max(b.hi, dv);
          break;
      }
    }
  }
}

// ---------- classic general path -----------------------------------------

StatusOr<QueryResult> ExecutePlanClassicGeneral(const PhysicalPlan& plan,
                                                const cs::Database& db) {
  WN_RETURN_IF_ERROR(ValidatePlan(plan, db));
  std::vector<const cs::Table*> hop_tables;
  for (const std::string& t : HopTables(plan)) hop_tables.push_back(&db.table(t));
  const ExactGetFn get = [&](uint32_t hop, const std::string& column,
                             uint64_t row) {
    return hop_tables[hop]->column(column).Get(row);
  };
  const RightValuesFn rights = [&](const std::string& table,
                                   const std::string& column) {
    const cs::Column& col = db.table(table).column(column);
    std::vector<int64_t> out(col.size());
    for (uint64_t i = 0; i < col.size(); ++i) out[i] = col.Get(i);
    std::sort(out.begin(), out.end());
    return out;
  };
  return EvalPlanExact(plan, hop_tables[0]->num_rows(), get, rights, nullptr);
}

// ---------- A&R general path ---------------------------------------------

/// Resolves the plan's hop tables (hop 0 = fact) and theta right sides
/// against the decomposed-table map, then checks every referenced column
/// is decomposed (NotFound, the legacy engine's vocabulary), FK columns
/// are fully device-resident (Unsupported — the A&R join invariant), and
/// the aggregate functions are in the general path's repertoire.
Status ResolveArPlan(const PhysicalPlan& plan, const bwd::BwdTable& fact,
                     const BwdTableMap& dims,
                     std::vector<const bwd::BwdTable*>* hops,
                     std::map<std::string, const bwd::BwdTable*>* rights) {
  hops->push_back(&fact);
  for (const PlanOp& op : plan.ops) {
    if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      auto it = dims.find(j->dim_table);
      if (it == dims.end() || it->second == nullptr) {
        return Status::InvalidArgument("plan joins table '" + j->dim_table +
                                       "' but no decomposed table was given");
      }
      hops->push_back(it->second);
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      auto it = dims.find(t->right_table);
      if (it == dims.end() || it->second == nullptr) {
        return Status::InvalidArgument("plan references table '" +
                                       t->right_table +
                                       "' but no decomposed table was given");
      }
      (*rights)[t->right_table] = it->second;
    }
  }

  auto check = [&](const bwd::BwdTable& table,
                   const std::string& column) -> Status {
    if (!table.HasColumn(column)) {
      return Status::NotFound("column '" + column + "' is not decomposed in '" +
                              table.name() + "'");
    }
    return Status::OK();
  };
  uint32_t hop = 1;
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      WN_RETURN_IF_ERROR(check(*(*hops)[f->hop], f->column));
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      WN_RETURN_IF_ERROR(check(*(*hops)[j->fk_hop], j->fk_column));
      if (!(*hops)[j->fk_hop]->column(j->fk_column).spec().fully_resident()) {
        return Status::Unsupported(
            "join keys must be fully device-resident (never decomposed)");
      }
      ++hop;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      WN_RETURN_IF_ERROR(check(*(*hops)[t->left_hop], t->left_column));
      WN_RETURN_IF_ERROR(check(*rights->at(t->right_table), t->right_column));
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) {
    WN_RETURN_IF_ERROR(check(*(*hops)[k.hop], k.column));
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    if (a.func == AggFunc::kMin || a.func == AggFunc::kMax) {
      return Status::Unsupported(
          "min/max aggregates are not supported in multi-join plans");
    }
    for (const PlanTerm& t : a.terms) {
      WN_RETURN_IF_ERROR(check(*(*hops)[t.col.hop], t.col.column));
    }
    if (a.filter.has_value()) {
      WN_RETURN_IF_ERROR(
          check(*(*hops)[a.filter->col.hop], a.filter->col.column));
    }
  }
  return Status::OK();
}

StatusOr<ArExecution> ExecutePlanArGeneral(const PhysicalPlan& plan,
                                           const bwd::BwdTable& fact,
                                           const BwdTableMap& dims,
                                           device::Device* dev,
                                           const ArOptions& options) {
  if (dev == nullptr) {
    return Status::InvalidArgument("plan execution requires a device");
  }
  WN_RETURN_IF_ERROR(CheckShape(plan));
  std::vector<const bwd::BwdTable*> hops;
  std::map<std::string, const bwd::BwdTable*> right_tables;
  WN_RETURN_IF_ERROR(ResolveArPlan(plan, fact, dims, &hops, &right_tables));

  device::SimClock::QueryScope query_clock(&dev->clock());
  const uint32_t num_hops = plan.num_hops();

  // --- Phase A: the approximate plan over the op sequence -----------------
  // Candidate state: fact oids, a conjoined certainty flag, and the exact
  // dimension oid of every joined hop (exact because FK digits are fully
  // resident — approximation error never flows through a join).
  Candidates cands;
  cands.ids.resize(fact.num_rows());
  std::iota(cands.ids.begin(), cands.ids.end(), 0);
  cands.sorted = true;
  std::vector<uint8_t> certain(cands.size(), 1);
  std::vector<std::vector<uint64_t>> hop_oids(1);  // [hop] (0 unused)

  auto row_of = [&](uint32_t hop, uint64_t i) -> uint64_t {
    return hop == 0 ? cands.ids[i] : hop_oids[hop][i];
  };
  // Drops rows with keep[i] == 0, conjoining op_certain into the flags.
  auto compact = [&](const std::vector<uint8_t>& keep,
                     const std::vector<uint8_t>& op_certain) {
    cs::OidVec ids;
    std::vector<uint8_t> cert;
    cs::OidVec positions;
    for (uint64_t i = 0; i < cands.size(); ++i) {
      if (!keep[i]) continue;
      ids.push_back(cands.ids[i]);
      cert.push_back(certain[i] & op_certain[i]);
      positions.push_back(static_cast<cs::oid_t>(i));
    }
    for (uint32_t h = 1; h < hop_oids.size(); ++h) {
      std::vector<uint64_t> oids(positions.size());
      for (uint64_t i = 0; i < positions.size(); ++i) {
        oids[i] = hop_oids[h][positions[i]];
      }
      hop_oids[h] = std::move(oids);
    }
    cands.ids = std::move(ids);
    certain = std::move(cert);
  };

  uint32_t built_hops = 1;
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      const bwd::BwdColumn& col = hops[f->hop]->column(f->column);
      if (f->hop == 0) {
        // Relaxed device selection on the fact approximation; compact every
        // aligned payload through kept_positions.
        ApproxSelection s = SelectApproximateOn(col, f->range, cands, dev);
        std::vector<uint8_t> cert(s.cands.size());
        for (uint64_t i = 0; i < s.cands.size(); ++i) {
          cert[i] = certain[s.kept_positions[i]] & s.certain[i];
        }
        for (uint32_t h = 1; h < hop_oids.size(); ++h) {
          std::vector<uint64_t> oids(s.cands.size());
          for (uint64_t i = 0; i < s.cands.size(); ++i) {
            oids[i] = hop_oids[h][s.kept_positions[i]];
          }
          hop_oids[h] = std::move(oids);
        }
        cands = std::move(s.cands);
        certain = std::move(cert);
      } else {
        // Dimension filter through gathered digits: possible rows survive,
        // certainty requires the whole digit interval to match.
        const RelaxedPred relaxed = RelaxPredicate(col.spec(), f->range);
        const bwd::PackedView view = col.approximation();
        const uint64_t n = cands.size();
        std::vector<uint8_t> poss(n), cert(n);
        device::KernelSignature sig;
        sig.op = "semijoin_approximate";
        sig.value_bits = col.spec().value_bits;
        sig.packed_bits = col.spec().approximation_bits();
        sig.prefix_base = col.spec().prefix_base;
        const uint64_t attr_bytes =
            std::max<uint64_t>((col.spec().approximation_bits() + 7) / 8, 1);
        const uint32_t hop = f->hop;
        dev->Launch(sig,
                    {.elements = n,
                     .bytes_read = n * (sizeof(cs::oid_t) + attr_bytes),
                     .bytes_written = n * 2,
                     .ops = 2 * n},
                    [&](uint64_t begin, uint64_t end) {
                      for (uint64_t i = begin; i < end; ++i) {
                        const uint64_t digit = view.Get(hop_oids[hop][i]);
                        poss[i] = relaxed.Matches(digit) ? 1 : 0;
                        cert[i] = relaxed.Certain(digit) ? 1 : 0;
                      }
                    });
        compact(poss, cert);
      }
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      // Exact dimension oids from the fully resident FK digits.
      const bwd::BwdColumn& fk = hops[j->fk_hop]->column(j->fk_column);
      const bwd::DecompositionSpec& fspec = fk.spec();
      const bwd::PackedView view = fk.approximation();
      const uint64_t n = cands.size();
      std::vector<uint64_t> oids(n);
      device::KernelSignature sig;
      sig.op = "fkjoin_gather";
      sig.value_bits = fspec.value_bits;
      sig.packed_bits = fspec.approximation_bits();
      sig.prefix_base = fspec.prefix_base;
      const uint64_t fk_bytes =
          std::max<uint64_t>((fspec.approximation_bits() + 7) / 8, 1);
      const uint32_t fk_hop = j->fk_hop;
      const int64_t fk_base = j->fk_base;
      dev->Launch(sig,
                  {.elements = n,
                   .bytes_read = n * (sizeof(cs::oid_t) + fk_bytes),
                   .bytes_written = n * sizeof(cs::oid_t),
                   .ops = n},
                  [&](uint64_t begin, uint64_t end) {
                    for (uint64_t i = begin; i < end; ++i) {
                      oids[i] = static_cast<uint64_t>(
                          fspec.Reassemble(view.Get(row_of(fk_hop, i)), 0) -
                          fk_base);
                    }
                  });
      hop_oids.push_back(std::move(oids));
      ++built_hops;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      // EXISTS semi-join against the right side's value hull: the relaxed
      // test uses the hull's outer bounds, certainty its inner bounds.
      const bwd::BwdColumn& rc = right_tables.at(t->right_table)
                                     ->column(t->right_column);
      const bwd::DecompositionSpec& rspec = rc.spec();
      const uint64_t n_r = rc.size();
      const uint64_t n = cands.size();
      if (n_r == 0) {
        compact(std::vector<uint8_t>(n, 0), std::vector<uint8_t>(n, 0));
        continue;
      }
      const bwd::PackedView rview = rc.approximation();
      uint64_t min_digit = 0, max_digit = 0;
      device::KernelSignature hull_sig;
      hull_sig.op = "theta_hull";
      hull_sig.value_bits = rspec.value_bits;
      hull_sig.packed_bits = rspec.approximation_bits();
      const uint64_t r_bytes =
          std::max<uint64_t>((rspec.approximation_bits() + 7) / 8, 1);
      dev->LaunchSerial(hull_sig,
                        {.elements = n_r,
                         .bytes_read = n_r * r_bytes,
                         .bytes_written = 16,
                         .ops = n_r},
                        [&] {
                          min_digit = max_digit = rview.Get(0);
                          for (uint64_t i = 1; i < n_r; ++i) {
                            const uint64_t d = rview.Get(i);
                            min_digit = std::min(min_digit, d);
                            max_digit = std::max(max_digit, d);
                          }
                        });
      const ValueBounds rmin{rspec.LowerBound(min_digit),
                             rspec.UpperBound(min_digit)};
      const ValueBounds rmax{rspec.LowerBound(max_digit),
                             rspec.UpperBound(max_digit)};

      const bwd::BwdColumn& lc = hops[t->left_hop]->column(t->left_column);
      const uint64_t l_bytes = std::max<uint64_t>(
          (lc.spec().approximation_bits() + 7) / 8, 1);
      std::vector<uint8_t> poss(n), cert(n);
      device::KernelSignature sig;
      sig.op = "thetasemi_approximate";
      sig.value_bits = lc.spec().value_bits;
      sig.packed_bits = lc.spec().approximation_bits();
      const uint32_t lhop = t->left_hop;
      const ThetaOp theta_op = t->op;
      const int64_t band = t->band;
      dev->Launch(sig,
                  {.elements = n,
                   .bytes_read = n * (sizeof(cs::oid_t) + l_bytes),
                   .bytes_written = n * 2,
                   .ops = 3 * n},
                  [&](uint64_t begin, uint64_t end) {
                    for (uint64_t i = begin; i < end; ++i) {
                      const uint64_t row = row_of(lhop, i);
                      const int64_t lo = lc.ApproxLowerBound(row);
                      const int64_t hi = lc.ApproxUpperBound(row);
                      switch (theta_op) {
                        case ThetaOp::kLess:
                          poss[i] = lo < rmax.hi ? 1 : 0;
                          cert[i] = hi < rmax.lo ? 1 : 0;
                          break;
                        case ThetaOp::kLessEqual:
                          poss[i] = lo <= rmax.hi ? 1 : 0;
                          cert[i] = hi <= rmax.lo ? 1 : 0;
                          break;
                        case ThetaOp::kBandWithin:
                          // Overlap with the banded hull keeps the row; the
                          // hull may have holes, so never certain.
                          poss[i] = (hi >= rmin.lo - band && lo <= rmax.hi + band)
                                        ? 1
                                        : 0;
                          cert[i] = 0;
                          break;
                      }
                    }
                  });
      compact(poss, cert);
    }
    // ProjectNode: manifest marker only.
  }
  (void)built_hops;

  // --- pre-grouping on approximation digit tuples -------------------------
  const auto& group_by = plan.group_agg.group_by;
  const bool grouped = !group_by.empty();
  const uint64_t n = cands.size();
  std::vector<const bwd::BwdColumn*> key_cols;
  bool keys_exact = true;
  for (const ColumnRef& k : group_by) {
    key_cols.push_back(&hops[k.hop]->column(k.column));
    keys_exact = keys_exact && key_cols.back()->spec().fully_resident();
  }

  std::vector<uint32_t> gids(n, 0);
  std::vector<uint64_t> first_pos;
  uint64_t num_groups = 1;
  std::vector<std::vector<uint64_t>> key_digits;  // [group][key]
  if (grouped) {
    // Digit-tuple grouping: gather every key's digits (device), then a
    // hash-style assignment in first-occurrence order; charged with the
    // exact distinct-target count once known (the Run-then-Charge pattern).
    std::vector<std::vector<uint64_t>> digs(group_by.size(),
                                            std::vector<uint64_t>(n));
    uint64_t key_bytes = 0;
    for (uint64_t k = 0; k < group_by.size(); ++k) {
      const bwd::PackedView view = key_cols[k]->approximation();
      const uint32_t hop = group_by[k].hop;
      key_bytes += std::max<uint64_t>(
          (key_cols[k]->spec().approximation_bits() + 7) / 8, 1);
      dev->Run(n, [&](uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          digs[k][i] = view.Get(row_of(hop, i));
        }
      });
    }
    std::map<std::vector<uint64_t>, uint32_t> gmap;
    std::vector<uint64_t> tuple(group_by.size());
    num_groups = 0;
    for (uint64_t i = 0; i < n; ++i) {
      for (uint64_t k = 0; k < tuple.size(); ++k) tuple[k] = digs[k][i];
      auto [it, inserted] =
          gmap.try_emplace(tuple, static_cast<uint32_t>(num_groups));
      if (inserted) {
        key_digits.push_back(tuple);
        first_pos.push_back(i);
        ++num_groups;
      }
      gids[i] = it->second;
    }
    device::KernelSignature sig;
    sig.op = "group_approximate";
    dev->ChargeKernel(sig, {.elements = n,
                            .bytes_read = n * (sizeof(cs::oid_t) + key_bytes),
                            .bytes_written = n * sizeof(uint32_t),
                            .ops = 3 * n,
                            .distinct_write_targets =
                                std::max<uint64_t>(num_groups, 1)});
  } else {
    first_pos.push_back(0);
  }

  // --- approximate aggregation with certainty/membership gates ------------
  uint64_t num_certain = 0;
  for (const uint8_t c : certain) num_certain += c;
  std::vector<int64_t> cnt_hi(num_groups, 0), cnt_lo(num_groups, 0);
  for (uint64_t i = 0; i < n; ++i) {
    cnt_hi[gids[i]] += 1;
    if (certain[i]) cnt_lo[gids[i]] += 1;
  }
  if (!keys_exact) {
    // Inexact key digits may split a digit group into several exact
    // groups; only subset-sound lower ends survive.
    std::fill(cnt_lo.begin(), cnt_lo.end(), 0);
  }

  ApproximateAnswer approx;
  approx.row_count = {static_cast<int64_t>(num_certain),
                      static_cast<int64_t>(n)};
  approx.key_bounds.resize(num_groups);
  approx.agg_bounds.resize(num_groups);
  if (grouped) {
    for (uint64_t g = 0; g < num_groups; ++g) {
      for (uint64_t k = 0; k < group_by.size(); ++k) {
        const bwd::DecompositionSpec& kspec = key_cols[k]->spec();
        approx.key_bounds[g].push_back(
            ValueBounds{kspec.LowerBound(key_digits[g][k]),
                        kspec.UpperBound(key_digits[g][k])});
      }
    }
  }

  for (const PlanAggregate& agg : plan.group_agg.aggregates) {
    // Per-row contribution interval to the group aggregate, computed in
    // one device pass: term digit bounds -> affine -> interval product ->
    // filter gate -> candidate-membership gate.
    std::vector<const bwd::BwdColumn*> tcols;
    uint64_t agg_bytes = sizeof(cs::oid_t);
    for (const PlanTerm& t : agg.terms) {
      tcols.push_back(&hops[t.col.hop]->column(t.col.column));
      agg_bytes += std::max<uint64_t>(
          (tcols.back()->spec().approximation_bits() + 7) / 8, 1);
    }
    const bwd::BwdColumn* fcol = nullptr;
    std::optional<RelaxedPred> frelaxed;
    if (agg.filter.has_value()) {
      fcol = &hops[agg.filter->col.hop]->column(agg.filter->col.column);
      frelaxed = RelaxPredicate(fcol->spec(), agg.filter->range);
      agg_bytes +=
          std::max<uint64_t>((fcol->spec().approximation_bits() + 7) / 8, 1);
    }

    std::vector<ValueBounds> contrib(n);   // gated sum contribution
    std::vector<ValueBounds> value(n);     // ungated expression bounds
    std::vector<uint8_t> gate_poss(n, 1), gate_cert(n, 1);
    device::KernelSignature sig;
    sig.op = "aggregate_approximate";
    dev->Launch(
        sig,
        {.elements = n,
         .bytes_read = n * agg_bytes,
         .bytes_written = n * 2 * sizeof(int64_t),
         .ops = n * (3 * std::max<uint64_t>(agg.terms.size(), 1) + 2)},
        [&](uint64_t begin, uint64_t end) {
          for (uint64_t i = begin; i < end; ++i) {
            ValueBounds v = ValueBounds::Exact(1);
            for (uint64_t t = 0; t < agg.terms.size(); ++t) {
              const PlanTerm& term = agg.terms[t];
              const uint64_t row = row_of(term.col.hop, i);
              ValueBounds tb{tcols[t]->ApproxLowerBound(row),
                             tcols[t]->ApproxUpperBound(row)};
              tb = term.sign >= 0 ? tb.Shift(term.offset)
                                  : tb.Negate().Shift(term.offset);
              v = v * tb;
            }
            v = v.Scale(agg.constant);
            value[i] = v;
            if (fcol != nullptr) {
              const uint64_t digit =
                  fcol->approximation().Get(row_of(agg.filter->col.hop, i));
              gate_poss[i] = frelaxed->Matches(digit) ? 1 : 0;
              gate_cert[i] = frelaxed->Certain(digit) ? 1 : 0;
            }
            const ValueBounds gate{gate_poss[i] && gate_cert[i] ? 1 : 0,
                                   gate_poss[i] ? 1 : 0};
            const ValueBounds member{certain[i] ? 1 : 0, 1};
            contrib[i] = v * gate * member;
          }
        });

    for (uint64_t g = 0; g < num_groups; ++g) {
      ValueBounds b{0, 0};
      bool any = false;
      switch (agg.func) {
        case AggFunc::kCount: {
          int64_t lo = 0, hi = 0;
          for (uint64_t i = 0; i < n; ++i) {
            if (gids[i] != g) continue;
            const bool maybe_nonzero =
                gate_poss[i] && !(value[i].lo == 0 && value[i].hi == 0);
            const bool certainly_nonzero =
                certain[i] && gate_cert[i] &&
                (value[i].lo > 0 || value[i].hi < 0);
            hi += maybe_nonzero ? 1 : 0;
            lo += certainly_nonzero ? 1 : 0;
          }
          b = {keys_exact ? lo : 0, hi};
          break;
        }
        case AggFunc::kSum: {
          int64_t lo = 0, hi = 0;
          for (uint64_t i = 0; i < n; ++i) {
            if (gids[i] != g) continue;
            lo += keys_exact ? contrib[i].lo : std::min<int64_t>(0, contrib[i].lo);
            hi += keys_exact ? contrib[i].hi : std::max<int64_t>(0, contrib[i].hi);
          }
          b = {lo, hi};
          break;
        }
        case AggFunc::kAvg: {
          // The average is a convex combination of the (gated) member
          // contributions, so their hull bounds it; a possibly empty group
          // must admit the 0 the engines report for one.
          for (uint64_t i = 0; i < n; ++i) {
            if (gids[i] != g) continue;
            b = any ? ValueBounds{std::min(b.lo, contrib[i].lo),
                                  std::max(b.hi, contrib[i].hi)}
                    : contrib[i];
            any = true;
          }
          if (!any || cnt_lo[g] == 0) {
            b = {std::min<int64_t>(b.lo, 0), std::max<int64_t>(b.hi, 0)};
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          break;  // rejected by ResolveArPlan
      }
      approx.agg_bounds[g].push_back(b);
    }
  }

  // --- phase boundary ------------------------------------------------------
  if (options.on_approximate) options.on_approximate(approx);
  dev->ChargeTransfer(n * (sizeof(cs::oid_t) + 1) +
                      (num_hops - 1) * n * sizeof(cs::oid_t));

  // --- Phase R: exact host refinement over the candidates -----------------
  WallTimer host_timer;
  const ExactGetFn get = [&](uint32_t hop, const std::string& column,
                             uint64_t row) {
    return hops[hop]->column(column).Reconstruct(row);
  };
  const RightValuesFn rights_fn = [&](const std::string& table,
                                      const std::string& column) {
    const bwd::BwdColumn& c = right_tables.at(table)->column(column);
    std::vector<int64_t> out(c.size());
    for (uint64_t i = 0; i < out.size(); ++i) out[i] = c.Reconstruct(i);
    std::sort(out.begin(), out.end());
    return out;
  };

  ArExecution exec;
  exec.approx = std::move(approx);
  exec.num_candidates = n;
  exec.result = EvalPlanExact(plan, fact.num_rows(), get, rights_fn, &cands.ids);
  exec.num_refined = exec.result.selected_rows;
  exec.breakdown.host_seconds = host_timer.Seconds();
  exec.breakdown.host_cpu_seconds = exec.breakdown.host_seconds;
  exec.breakdown.device_seconds = query_clock.device_seconds();
  exec.breakdown.bus_seconds = query_clock.bus_seconds();
  exec.plan_text = plan.ToString();
  return exec;
}

// ---------- streaming general path ---------------------------------------

StatusOr<StreamingExecution> ExecutePlanStreamingGeneral(
    const PhysicalPlan& plan, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache) {
  WN_RETURN_IF_ERROR(ValidatePlan(plan, db));

  StreamingExecution exec;
  device::SimClock::QueryScope query_clock(&dev->clock());

  // Pin every referenced column of every table (LRU-cached raw columns).
  std::map<std::string, std::set<std::string>> inputs;
  const std::vector<std::string> hop_tables = HopTables(plan);
  auto add = [&](const ColumnRef& ref) {
    inputs[hop_tables[ref.hop]].insert(ref.column);
  };
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      add(ColumnRef{f->column, f->hop});
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      add(ColumnRef{j->fk_column, j->fk_hop});
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      add(ColumnRef{t->left_column, t->left_hop});
      inputs[t->right_table].insert(t->right_column);
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) add(k);
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    for (const PlanTerm& t : a.terms) add(t.col);
    if (a.filter.has_value()) add(a.filter->col);
  }
  for (const auto& [table, columns] : inputs) {
    const cs::Table& t = db.table(table);
    for (const std::string& column : columns) {
      const cs::Column& col = t.column(column);
      WN_ASSIGN_OR_RETURN(
          device::ResidencyCache::Access access,
          cache->Pin(table + "." + column,
                     col.type() == cs::ValueType::kInt32
                         ? static_cast<const void*>(col.I32().data())
                         : static_cast<const void*>(col.I64().data()),
                     col.byte_size()));
      exec.bytes_transferred += access.bytes_transferred;
      exec.cache_hits += access.hit ? 1 : 0;
      exec.cache_misses += access.hit ? 0 : 1;
    }
  }

  WN_ASSIGN_OR_RETURN(exec.result, ExecutePlanClassicGeneral(plan, db));

  // Raw-width kernel charges, one per plan node.
  const uint64_t n = db.table(plan.scan.table).num_rows();
  const uint64_t selected = exec.result.selected_rows;
  device::KernelSignature sig;
  sig.extra = "streaming/raw";
  bool first = true;
  for (const PlanOp& op : plan.ops) {
    const uint64_t in_rows = first ? n : selected;
    if (std::holds_alternative<FilterNode>(op)) {
      sig.op = "uselect_raw";
      dev->ChargeKernel(sig, {.elements = in_rows,
                              .bytes_read = in_rows * sizeof(int32_t) +
                                            (first ? 0 : in_rows * 4),
                              .bytes_written = selected * sizeof(cs::oid_t),
                              .ops = in_rows});
      first = false;
    } else if (std::holds_alternative<FkJoinNode>(op)) {
      sig.op = "fkjoin_raw";
      dev->ChargeKernel(sig, {.elements = in_rows,
                              .bytes_read = in_rows * 2 * sizeof(int32_t),
                              .bytes_written = in_rows * sizeof(int32_t),
                              .ops = in_rows});
      first = false;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      const uint64_t n_r = db.table(t->right_table).num_rows();
      sig.op = "thetasemi_raw";
      dev->ChargeKernel(sig,
                        {.elements = in_rows,
                         .bytes_read = (in_rows + n_r) * sizeof(int32_t),
                         .bytes_written = selected * sizeof(cs::oid_t),
                         .ops = in_rows});
      first = false;
    }
  }
  if (!plan.group_agg.group_by.empty()) {
    sig.op = "group_raw";
    dev->ChargeKernel(
        sig,
        {.elements = selected,
         .bytes_read =
             selected * (sizeof(int32_t) * plan.group_agg.group_by.size() + 4),
         .bytes_written = selected * sizeof(uint32_t),
         .ops = 3 * selected,
         .distinct_write_targets =
             std::max<uint64_t>(exec.result.num_groups(), 1)});
  }
  for (const PlanAggregate& agg : plan.group_agg.aggregates) {
    sig.op = "aggregate_raw";
    const uint64_t term_bytes =
        std::max<uint64_t>(agg.terms.size(), 1) * sizeof(int32_t);
    dev->ChargeKernel(
        sig, {.elements = selected,
              .bytes_read = selected * (term_bytes + sizeof(uint32_t)),
              .bytes_written = selected * sizeof(int64_t),
              .ops = 2 * selected,
              .distinct_write_targets =
                  std::max<uint64_t>(exec.result.num_groups(), 1)});
  }
  dev->ChargeTransfer(exec.result.num_groups() *
                      (plan.group_agg.group_by.size() +
                       plan.group_agg.aggregates.size()) *
                      sizeof(int64_t));

  exec.breakdown.device_seconds = query_clock.device_seconds();
  exec.breakdown.bus_seconds = query_clock.bus_seconds();
  return exec;
}

}  // namespace

// ---------- plan executors (dispatch) ------------------------------------

StatusOr<ArExecution> ExecutePlanAr(const PhysicalPlan& plan,
                                    const bwd::BwdTable& fact,
                                    const BwdTableMap& dims,
                                    device::Device* dev,
                                    const ArOptions& options) {
  // The delta side is evaluated up front so the progressive hook can hand
  // out a merged (still sound) approximate answer at the true phase
  // boundary, not after refinement.
  const storage::DeltaBatch* delta = options.delta;
  if (delta != nullptr && delta->empty()) delta = nullptr;
  QueryResult delta_part;
  double delta_seconds = 0;
  ArOptions inner = options;
  inner.delta = nullptr;
  if (delta != nullptr) {
    WallTimer delta_timer;
    WN_ASSIGN_OR_RETURN(delta_part, EvalDeltaAr(plan, *delta, dims));
    delta_seconds = delta_timer.Seconds();
    if (options.on_approximate) {
      inner.on_approximate = [&options, &delta_part,
                              &plan](const ApproximateAnswer& a) {
        ApproximateAnswer merged = a;
        MergeDeltaApprox(plan, delta_part, &merged);
        options.on_approximate(merged);
      };
    }
  }

  StatusOr<ArExecution> exec = [&]() -> StatusOr<ArExecution> {
    StatusOr<QuerySpec> spec = PlanToSpec(plan);
    if (spec.ok()) {
      const QuerySpec& query = spec.value();
      const bwd::BwdTable* dim = nullptr;
      if (query.join.has_value()) {
        auto it = dims.find(query.join->dim_table);
        if (it != dims.end()) dim = it->second;
      }
      return detail::ExecuteArLegacy(query, fact, dim, dev, inner);
    }
    return ExecutePlanArGeneral(plan, fact, dims, dev, inner);
  }();
  if (!exec.ok() || delta == nullptr) return exec;

  WallTimer merge_timer;
  MergeDeltaResult(plan, delta_part, &exec->result);
  MergeDeltaApprox(plan, delta_part, &exec->approx);
  exec->num_candidates += delta->num_rows();
  exec->num_refined += delta_part.selected_rows;
  const double host = delta_seconds + merge_timer.Seconds();
  exec->breakdown.host_seconds += host;
  exec->breakdown.host_cpu_seconds += host;
  return exec;
}

StatusOr<QueryResult> ExecutePlanClassic(const PhysicalPlan& plan,
                                         const cs::Database& db,
                                         const ClassicOptions& options) {
  ClassicOptions inner = options;
  inner.delta = nullptr;
  StatusOr<QueryResult> base = [&]() -> StatusOr<QueryResult> {
    StatusOr<QuerySpec> spec = PlanToSpec(plan);
    if (spec.ok()) return detail::ExecuteClassicLegacy(spec.value(), db, inner);
    return ExecutePlanClassicGeneral(plan, db);
  }();
  if (!base.ok() || options.delta == nullptr || options.delta->empty()) {
    return base;
  }
  WN_ASSIGN_OR_RETURN(const QueryResult delta_part,
                      EvalDeltaClassic(plan, *options.delta, db));
  MergeDeltaResult(plan, delta_part, &base.value());
  return base;
}

StatusOr<StreamingExecution> ExecutePlanStreaming(
    const PhysicalPlan& plan, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache, const storage::DeltaBatch* delta) {
  StatusOr<StreamingExecution> exec = [&]() -> StatusOr<StreamingExecution> {
    StatusOr<QuerySpec> spec = PlanToSpec(plan);
    if (spec.ok()) {
      return detail::ExecuteStreamingLegacy(spec.value(), db, dev, cache);
    }
    return ExecutePlanStreamingGeneral(plan, db, dev, cache);
  }();
  if (!exec.ok() || delta == nullptr || delta->empty()) return exec;
  WallTimer timer;
  WN_ASSIGN_OR_RETURN(const QueryResult delta_part,
                      EvalDeltaClassic(plan, *delta, db));
  MergeDeltaResult(plan, delta_part, &exec->result);
  exec->breakdown.host_seconds += timer.Seconds();
  return exec;
}

// ---------- public engine entry points -----------------------------------
//
// The engines' public entry points now lower through the plan layer; on
// every QuerySpec the round trip LowerToPlan -> PlanToSpec is the identity,
// so they dispatch straight onto the legacy bodies.

StatusOr<ArExecution> ExecuteAr(const QuerySpec& query,
                                const bwd::BwdTable& fact,
                                const bwd::BwdTable* dim,
                                device::Device* dev,
                                const ArOptions& options) {
  BwdTableMap dims;
  if (query.join.has_value() && dim != nullptr) {
    dims[query.join->dim_table] = dim;
  }
  return ExecutePlanAr(LowerToPlan(query), fact, dims, dev, options);
}

StatusOr<QueryResult> ExecuteClassic(const QuerySpec& query,
                                     const cs::Database& db,
                                     const ClassicOptions& options) {
  return ExecutePlanClassic(LowerToPlan(query), db, options);
}

StatusOr<StreamingExecution> ExecuteStreaming(const QuerySpec& query,
                                              const cs::Database& db,
                                              device::Device* dev,
                                              device::ResidencyCache* cache,
                                              const storage::DeltaBatch* delta) {
  return ExecutePlanStreaming(LowerToPlan(query), db, dev, cache, delta);
}

}  // namespace wastenot::core
