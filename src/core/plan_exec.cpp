#include "core/plan_exec.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <set>
#include <utility>
#include <variant>
#include <vector>

#include "core/select.h"
#include "util/timer.h"

namespace wastenot::core {

namespace {

// ---------- shared exact evaluation --------------------------------------
//
// One exact evaluator serves the classic general path, the streaming
// general path and the A&R general refinement phase, so every mode agrees
// on multi-join results by construction. Access to values goes through an
// accessor (base columns for classic/streaming, residual reconstruction
// for A&R), theta right sides through a sorted-values provider.

using ExactGetFn = std::function<int64_t(uint32_t hop, const std::string& column,
                                         uint64_t row)>;
using RightValuesFn = std::function<std::vector<int64_t>(
    const std::string& table, const std::string& column)>;

/// Evaluates `plan` exactly over `initial` fact rows (all rows when null):
/// walks the op sequence row at a time (filters reject, FK joins extend the
/// hop-row tuple, theta nodes test EXISTS against the sorted right values),
/// groups survivors by exact key tuple, and aggregates with the classic
/// engine's semantics (count counts non-zero expression values, avg stores
/// the sum, min/max report 0 for empty groups). Canonical key order.
QueryResult EvalPlanExact(const PhysicalPlan& plan, uint64_t fact_rows,
                          const ExactGetFn& get, const RightValuesFn& rights,
                          const cs::OidVec* initial) {
  std::vector<std::vector<int64_t>> theta_rights;
  for (const PlanOp& op : plan.ops) {
    if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      theta_rights.push_back(rights(t->right_table, t->right_column));
    }
  }

  const uint32_t num_hops = plan.num_hops();
  QueryResult result;
  for (const ColumnRef& k : plan.group_agg.group_by) {
    result.key_names.push_back(k.column);
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    result.agg_labels.push_back(a.label);
  }

  std::vector<uint64_t> flat_hops;  // [survivor * num_hops + hop]
  std::vector<uint64_t> hop_rows(num_hops);
  auto row_passes = [&](uint64_t id) -> bool {
    hop_rows[0] = id;
    uint32_t next_hop = 1;
    uint64_t theta_idx = 0;
    for (const PlanOp& op : plan.ops) {
      if (const auto* f = std::get_if<FilterNode>(&op)) {
        if (!f->range.Contains(get(f->hop, f->column, hop_rows[f->hop]))) {
          return false;
        }
      } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
        hop_rows[next_hop++] = static_cast<uint64_t>(
            get(j->fk_hop, j->fk_column, hop_rows[j->fk_hop]) - j->fk_base);
      } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
        const std::vector<int64_t>& rv = theta_rights[theta_idx++];
        if (rv.empty()) return false;
        const int64_t v = get(t->left_hop, t->left_column, hop_rows[t->left_hop]);
        switch (t->op) {
          case ThetaOp::kLess:
            if (!(v < rv.back())) return false;
            break;
          case ThetaOp::kLessEqual:
            if (!(v <= rv.back())) return false;
            break;
          case ThetaOp::kBandWithin: {
            auto it = std::lower_bound(rv.begin(), rv.end(), v - t->band);
            if (it == rv.end() || *it > v + t->band) return false;
            break;
          }
        }
      }  // ProjectNode: manifest marker, nothing to evaluate.
    }
    return true;
  };

  uint64_t selected = 0;
  auto consider = [&](uint64_t id) {
    if (!row_passes(id)) return;
    for (uint32_t h = 0; h < num_hops; ++h) flat_hops.push_back(hop_rows[h]);
    ++selected;
  };
  if (initial != nullptr) {
    for (const cs::oid_t id : *initial) consider(id);
  } else {
    for (uint64_t id = 0; id < fact_rows; ++id) consider(id);
  }
  result.selected_rows = selected;

  // --- grouping by exact key tuple ---------------------------------------
  const bool grouped = !plan.group_agg.group_by.empty();
  std::vector<uint32_t> gids(selected, 0);
  uint64_t num_groups = 1;
  std::vector<std::vector<int64_t>> keys_of_group;
  if (grouped) {
    num_groups = 0;
    std::map<std::vector<int64_t>, uint32_t> group_of;
    std::vector<int64_t> key(plan.group_agg.group_by.size());
    for (uint64_t i = 0; i < selected; ++i) {
      for (uint64_t k = 0; k < key.size(); ++k) {
        const ColumnRef& ref = plan.group_agg.group_by[k];
        key[k] = get(ref.hop, ref.column, flat_hops[i * num_hops + ref.hop]);
      }
      auto [it, inserted] =
          group_of.try_emplace(key, static_cast<uint32_t>(num_groups));
      if (inserted) {
        keys_of_group.push_back(key);
        ++num_groups;
      }
      gids[i] = it->second;
    }
  }

  result.group_counts.assign(num_groups, 0);
  for (uint64_t i = 0; i < selected; ++i) result.group_counts[gids[i]] += 1;

  // --- aggregates ---------------------------------------------------------
  std::vector<std::vector<int64_t>> agg_columns;  // [agg][group]
  for (const PlanAggregate& agg : plan.group_agg.aggregates) {
    // Per-row expression value: constant * Π (offset ± col); empty = 1.
    std::vector<int64_t> values(selected, 1);
    for (const PlanTerm& term : agg.terms) {
      for (uint64_t i = 0; i < selected; ++i) {
        const int64_t v =
            get(term.col.hop, term.col.column, flat_hops[i * num_hops + term.col.hop]);
        values[i] *= term.sign >= 0 ? term.offset + v : term.offset - v;
      }
    }
    if (agg.constant != 1) {
      for (auto& v : values) v *= agg.constant;
    }
    if (agg.filter.has_value()) {
      const ColumnRef& ref = agg.filter->col;
      for (uint64_t i = 0; i < selected; ++i) {
        if (!agg.filter->range.Contains(
                get(ref.hop, ref.column, flat_hops[i * num_hops + ref.hop]))) {
          values[i] = 0;
        }
      }
    }

    switch (agg.func) {
      case AggFunc::kCount: {
        std::vector<int64_t> counts(num_groups, 0);
        if (agg.terms.empty() && !agg.filter.has_value()) {
          for (uint64_t i = 0; i < selected; ++i) counts[gids[i]] += 1;
        } else {
          for (uint64_t i = 0; i < selected; ++i) {
            counts[gids[i]] += values[i] != 0 ? 1 : 0;
          }
        }
        agg_columns.push_back(std::move(counts));
        break;
      }
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        std::vector<int64_t> sums(num_groups, 0);
        for (uint64_t i = 0; i < selected; ++i) sums[gids[i]] += values[i];
        agg_columns.push_back(std::move(sums));
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        std::vector<int64_t> extrema(num_groups, 0);
        std::vector<uint8_t> seen(num_groups, 0);
        for (uint64_t i = 0; i < selected; ++i) {
          const uint32_t g = gids[i];
          if (!seen[g]) {
            extrema[g] = values[i];
            seen[g] = 1;
          } else {
            extrema[g] = agg.func == AggFunc::kMin
                             ? std::min(extrema[g], values[i])
                             : std::max(extrema[g], values[i]);
          }
        }
        agg_columns.push_back(std::move(extrema));
        break;
      }
    }
  }

  // --- materialize --------------------------------------------------------
  result.group_keys =
      grouped ? std::move(keys_of_group)
              : std::vector<std::vector<int64_t>>(1);
  result.agg_values.resize(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    for (const auto& col : agg_columns) result.agg_values[g].push_back(col[g]);
  }
  result.SortByKeys();
  return result;
}

// ---------- general-path structural checks -------------------------------

/// Hop references must name hops the plan has joined by that point (ops)
/// or at all (group/aggregate stage) — the part of ValidatePlan that needs
/// no catalog, shared by the A&R path (which has no cs::Database).
Status CheckShape(const PhysicalPlan& plan) {
  const uint32_t num_hops = plan.num_hops();
  uint32_t have = 1;
  auto bad = [](const std::string& col, uint32_t hop) {
    return Status::InvalidArgument(
        "column reference h" + std::to_string(hop) + "." + col +
        " names a hop the plan has not joined");
  };
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      if (f->hop >= have) return bad(f->column, f->hop);
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      if (j->fk_hop >= have) return bad(j->fk_column, j->fk_hop);
      ++have;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      if (t->left_hop >= have) return bad(t->left_column, t->left_hop);
    } else if (const auto* p = std::get_if<ProjectNode>(&op)) {
      for (const ColumnRef& c : p->columns) {
        if (c.hop >= have) return bad(c.column, c.hop);
      }
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) {
    if (k.hop >= num_hops) return bad(k.column, k.hop);
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    for (const PlanTerm& t : a.terms) {
      if (t.col.hop >= num_hops) return bad(t.col.column, t.col.hop);
    }
    if (a.filter.has_value() && a.filter->col.hop >= num_hops) {
      return bad(a.filter->col.column, a.filter->col.hop);
    }
  }
  return Status::OK();
}

// ---------- classic general path -----------------------------------------

StatusOr<QueryResult> ExecutePlanClassicGeneral(const PhysicalPlan& plan,
                                                const cs::Database& db) {
  WN_RETURN_IF_ERROR(ValidatePlan(plan, db));
  std::vector<const cs::Table*> hop_tables;
  for (const std::string& t : HopTables(plan)) hop_tables.push_back(&db.table(t));
  const ExactGetFn get = [&](uint32_t hop, const std::string& column,
                             uint64_t row) {
    return hop_tables[hop]->column(column).Get(row);
  };
  const RightValuesFn rights = [&](const std::string& table,
                                   const std::string& column) {
    const cs::Column& col = db.table(table).column(column);
    std::vector<int64_t> out(col.size());
    for (uint64_t i = 0; i < col.size(); ++i) out[i] = col.Get(i);
    std::sort(out.begin(), out.end());
    return out;
  };
  return EvalPlanExact(plan, hop_tables[0]->num_rows(), get, rights, nullptr);
}

// ---------- A&R general path ---------------------------------------------

/// Resolves the plan's hop tables (hop 0 = fact) and theta right sides
/// against the decomposed-table map, then checks every referenced column
/// is decomposed (NotFound, the legacy engine's vocabulary), FK columns
/// are fully device-resident (Unsupported — the A&R join invariant), and
/// the aggregate functions are in the general path's repertoire.
Status ResolveArPlan(const PhysicalPlan& plan, const bwd::BwdTable& fact,
                     const BwdTableMap& dims,
                     std::vector<const bwd::BwdTable*>* hops,
                     std::map<std::string, const bwd::BwdTable*>* rights) {
  hops->push_back(&fact);
  for (const PlanOp& op : plan.ops) {
    if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      auto it = dims.find(j->dim_table);
      if (it == dims.end() || it->second == nullptr) {
        return Status::InvalidArgument("plan joins table '" + j->dim_table +
                                       "' but no decomposed table was given");
      }
      hops->push_back(it->second);
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      auto it = dims.find(t->right_table);
      if (it == dims.end() || it->second == nullptr) {
        return Status::InvalidArgument("plan references table '" +
                                       t->right_table +
                                       "' but no decomposed table was given");
      }
      (*rights)[t->right_table] = it->second;
    }
  }

  auto check = [&](const bwd::BwdTable& table,
                   const std::string& column) -> Status {
    if (!table.HasColumn(column)) {
      return Status::NotFound("column '" + column + "' is not decomposed in '" +
                              table.name() + "'");
    }
    return Status::OK();
  };
  uint32_t hop = 1;
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      WN_RETURN_IF_ERROR(check(*(*hops)[f->hop], f->column));
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      WN_RETURN_IF_ERROR(check(*(*hops)[j->fk_hop], j->fk_column));
      if (!(*hops)[j->fk_hop]->column(j->fk_column).spec().fully_resident()) {
        return Status::Unsupported(
            "join keys must be fully device-resident (never decomposed)");
      }
      ++hop;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      WN_RETURN_IF_ERROR(check(*(*hops)[t->left_hop], t->left_column));
      WN_RETURN_IF_ERROR(check(*rights->at(t->right_table), t->right_column));
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) {
    WN_RETURN_IF_ERROR(check(*(*hops)[k.hop], k.column));
  }
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    if (a.func == AggFunc::kMin || a.func == AggFunc::kMax) {
      return Status::Unsupported(
          "min/max aggregates are not supported in multi-join plans");
    }
    for (const PlanTerm& t : a.terms) {
      WN_RETURN_IF_ERROR(check(*(*hops)[t.col.hop], t.col.column));
    }
    if (a.filter.has_value()) {
      WN_RETURN_IF_ERROR(
          check(*(*hops)[a.filter->col.hop], a.filter->col.column));
    }
  }
  return Status::OK();
}

StatusOr<ArExecution> ExecutePlanArGeneral(const PhysicalPlan& plan,
                                           const bwd::BwdTable& fact,
                                           const BwdTableMap& dims,
                                           device::Device* dev,
                                           const ArOptions& options) {
  if (dev == nullptr) {
    return Status::InvalidArgument("plan execution requires a device");
  }
  WN_RETURN_IF_ERROR(CheckShape(plan));
  std::vector<const bwd::BwdTable*> hops;
  std::map<std::string, const bwd::BwdTable*> right_tables;
  WN_RETURN_IF_ERROR(ResolveArPlan(plan, fact, dims, &hops, &right_tables));

  device::SimClock::QueryScope query_clock(&dev->clock());
  const uint32_t num_hops = plan.num_hops();

  // --- Phase A: the approximate plan over the op sequence -----------------
  // Candidate state: fact oids, a conjoined certainty flag, and the exact
  // dimension oid of every joined hop (exact because FK digits are fully
  // resident — approximation error never flows through a join).
  Candidates cands;
  cands.ids.resize(fact.num_rows());
  std::iota(cands.ids.begin(), cands.ids.end(), 0);
  cands.sorted = true;
  std::vector<uint8_t> certain(cands.size(), 1);
  std::vector<std::vector<uint64_t>> hop_oids(1);  // [hop] (0 unused)

  auto row_of = [&](uint32_t hop, uint64_t i) -> uint64_t {
    return hop == 0 ? cands.ids[i] : hop_oids[hop][i];
  };
  // Drops rows with keep[i] == 0, conjoining op_certain into the flags.
  auto compact = [&](const std::vector<uint8_t>& keep,
                     const std::vector<uint8_t>& op_certain) {
    cs::OidVec ids;
    std::vector<uint8_t> cert;
    cs::OidVec positions;
    for (uint64_t i = 0; i < cands.size(); ++i) {
      if (!keep[i]) continue;
      ids.push_back(cands.ids[i]);
      cert.push_back(certain[i] & op_certain[i]);
      positions.push_back(static_cast<cs::oid_t>(i));
    }
    for (uint32_t h = 1; h < hop_oids.size(); ++h) {
      std::vector<uint64_t> oids(positions.size());
      for (uint64_t i = 0; i < positions.size(); ++i) {
        oids[i] = hop_oids[h][positions[i]];
      }
      hop_oids[h] = std::move(oids);
    }
    cands.ids = std::move(ids);
    certain = std::move(cert);
  };

  uint32_t built_hops = 1;
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      const bwd::BwdColumn& col = hops[f->hop]->column(f->column);
      if (f->hop == 0) {
        // Relaxed device selection on the fact approximation; compact every
        // aligned payload through kept_positions.
        ApproxSelection s = SelectApproximateOn(col, f->range, cands, dev);
        std::vector<uint8_t> cert(s.cands.size());
        for (uint64_t i = 0; i < s.cands.size(); ++i) {
          cert[i] = certain[s.kept_positions[i]] & s.certain[i];
        }
        for (uint32_t h = 1; h < hop_oids.size(); ++h) {
          std::vector<uint64_t> oids(s.cands.size());
          for (uint64_t i = 0; i < s.cands.size(); ++i) {
            oids[i] = hop_oids[h][s.kept_positions[i]];
          }
          hop_oids[h] = std::move(oids);
        }
        cands = std::move(s.cands);
        certain = std::move(cert);
      } else {
        // Dimension filter through gathered digits: possible rows survive,
        // certainty requires the whole digit interval to match.
        const RelaxedPred relaxed = RelaxPredicate(col.spec(), f->range);
        const bwd::PackedView view = col.approximation();
        const uint64_t n = cands.size();
        std::vector<uint8_t> poss(n), cert(n);
        device::KernelSignature sig;
        sig.op = "semijoin_approximate";
        sig.value_bits = col.spec().value_bits;
        sig.packed_bits = col.spec().approximation_bits();
        sig.prefix_base = col.spec().prefix_base;
        const uint64_t attr_bytes =
            std::max<uint64_t>((col.spec().approximation_bits() + 7) / 8, 1);
        const uint32_t hop = f->hop;
        dev->Launch(sig,
                    {.elements = n,
                     .bytes_read = n * (sizeof(cs::oid_t) + attr_bytes),
                     .bytes_written = n * 2,
                     .ops = 2 * n},
                    [&](uint64_t begin, uint64_t end) {
                      for (uint64_t i = begin; i < end; ++i) {
                        const uint64_t digit = view.Get(hop_oids[hop][i]);
                        poss[i] = relaxed.Matches(digit) ? 1 : 0;
                        cert[i] = relaxed.Certain(digit) ? 1 : 0;
                      }
                    });
        compact(poss, cert);
      }
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      // Exact dimension oids from the fully resident FK digits.
      const bwd::BwdColumn& fk = hops[j->fk_hop]->column(j->fk_column);
      const bwd::DecompositionSpec& fspec = fk.spec();
      const bwd::PackedView view = fk.approximation();
      const uint64_t n = cands.size();
      std::vector<uint64_t> oids(n);
      device::KernelSignature sig;
      sig.op = "fkjoin_gather";
      sig.value_bits = fspec.value_bits;
      sig.packed_bits = fspec.approximation_bits();
      sig.prefix_base = fspec.prefix_base;
      const uint64_t fk_bytes =
          std::max<uint64_t>((fspec.approximation_bits() + 7) / 8, 1);
      const uint32_t fk_hop = j->fk_hop;
      const int64_t fk_base = j->fk_base;
      dev->Launch(sig,
                  {.elements = n,
                   .bytes_read = n * (sizeof(cs::oid_t) + fk_bytes),
                   .bytes_written = n * sizeof(cs::oid_t),
                   .ops = n},
                  [&](uint64_t begin, uint64_t end) {
                    for (uint64_t i = begin; i < end; ++i) {
                      oids[i] = static_cast<uint64_t>(
                          fspec.Reassemble(view.Get(row_of(fk_hop, i)), 0) -
                          fk_base);
                    }
                  });
      hop_oids.push_back(std::move(oids));
      ++built_hops;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      // EXISTS semi-join against the right side's value hull: the relaxed
      // test uses the hull's outer bounds, certainty its inner bounds.
      const bwd::BwdColumn& rc = right_tables.at(t->right_table)
                                     ->column(t->right_column);
      const bwd::DecompositionSpec& rspec = rc.spec();
      const uint64_t n_r = rc.size();
      const uint64_t n = cands.size();
      if (n_r == 0) {
        compact(std::vector<uint8_t>(n, 0), std::vector<uint8_t>(n, 0));
        continue;
      }
      const bwd::PackedView rview = rc.approximation();
      uint64_t min_digit = 0, max_digit = 0;
      device::KernelSignature hull_sig;
      hull_sig.op = "theta_hull";
      hull_sig.value_bits = rspec.value_bits;
      hull_sig.packed_bits = rspec.approximation_bits();
      const uint64_t r_bytes =
          std::max<uint64_t>((rspec.approximation_bits() + 7) / 8, 1);
      dev->LaunchSerial(hull_sig,
                        {.elements = n_r,
                         .bytes_read = n_r * r_bytes,
                         .bytes_written = 16,
                         .ops = n_r},
                        [&] {
                          min_digit = max_digit = rview.Get(0);
                          for (uint64_t i = 1; i < n_r; ++i) {
                            const uint64_t d = rview.Get(i);
                            min_digit = std::min(min_digit, d);
                            max_digit = std::max(max_digit, d);
                          }
                        });
      const ValueBounds rmin{rspec.LowerBound(min_digit),
                             rspec.UpperBound(min_digit)};
      const ValueBounds rmax{rspec.LowerBound(max_digit),
                             rspec.UpperBound(max_digit)};

      const bwd::BwdColumn& lc = hops[t->left_hop]->column(t->left_column);
      const uint64_t l_bytes = std::max<uint64_t>(
          (lc.spec().approximation_bits() + 7) / 8, 1);
      std::vector<uint8_t> poss(n), cert(n);
      device::KernelSignature sig;
      sig.op = "thetasemi_approximate";
      sig.value_bits = lc.spec().value_bits;
      sig.packed_bits = lc.spec().approximation_bits();
      const uint32_t lhop = t->left_hop;
      const ThetaOp theta_op = t->op;
      const int64_t band = t->band;
      dev->Launch(sig,
                  {.elements = n,
                   .bytes_read = n * (sizeof(cs::oid_t) + l_bytes),
                   .bytes_written = n * 2,
                   .ops = 3 * n},
                  [&](uint64_t begin, uint64_t end) {
                    for (uint64_t i = begin; i < end; ++i) {
                      const uint64_t row = row_of(lhop, i);
                      const int64_t lo = lc.ApproxLowerBound(row);
                      const int64_t hi = lc.ApproxUpperBound(row);
                      switch (theta_op) {
                        case ThetaOp::kLess:
                          poss[i] = lo < rmax.hi ? 1 : 0;
                          cert[i] = hi < rmax.lo ? 1 : 0;
                          break;
                        case ThetaOp::kLessEqual:
                          poss[i] = lo <= rmax.hi ? 1 : 0;
                          cert[i] = hi <= rmax.lo ? 1 : 0;
                          break;
                        case ThetaOp::kBandWithin:
                          // Overlap with the banded hull keeps the row; the
                          // hull may have holes, so never certain.
                          poss[i] = (hi >= rmin.lo - band && lo <= rmax.hi + band)
                                        ? 1
                                        : 0;
                          cert[i] = 0;
                          break;
                      }
                    }
                  });
      compact(poss, cert);
    }
    // ProjectNode: manifest marker only.
  }
  (void)built_hops;

  // --- pre-grouping on approximation digit tuples -------------------------
  const auto& group_by = plan.group_agg.group_by;
  const bool grouped = !group_by.empty();
  const uint64_t n = cands.size();
  std::vector<const bwd::BwdColumn*> key_cols;
  bool keys_exact = true;
  for (const ColumnRef& k : group_by) {
    key_cols.push_back(&hops[k.hop]->column(k.column));
    keys_exact = keys_exact && key_cols.back()->spec().fully_resident();
  }

  std::vector<uint32_t> gids(n, 0);
  std::vector<uint64_t> first_pos;
  uint64_t num_groups = 1;
  std::vector<std::vector<uint64_t>> key_digits;  // [group][key]
  if (grouped) {
    // Digit-tuple grouping: gather every key's digits (device), then a
    // hash-style assignment in first-occurrence order; charged with the
    // exact distinct-target count once known (the Run-then-Charge pattern).
    std::vector<std::vector<uint64_t>> digs(group_by.size(),
                                            std::vector<uint64_t>(n));
    uint64_t key_bytes = 0;
    for (uint64_t k = 0; k < group_by.size(); ++k) {
      const bwd::PackedView view = key_cols[k]->approximation();
      const uint32_t hop = group_by[k].hop;
      key_bytes += std::max<uint64_t>(
          (key_cols[k]->spec().approximation_bits() + 7) / 8, 1);
      dev->Run(n, [&](uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          digs[k][i] = view.Get(row_of(hop, i));
        }
      });
    }
    std::map<std::vector<uint64_t>, uint32_t> gmap;
    std::vector<uint64_t> tuple(group_by.size());
    num_groups = 0;
    for (uint64_t i = 0; i < n; ++i) {
      for (uint64_t k = 0; k < tuple.size(); ++k) tuple[k] = digs[k][i];
      auto [it, inserted] =
          gmap.try_emplace(tuple, static_cast<uint32_t>(num_groups));
      if (inserted) {
        key_digits.push_back(tuple);
        first_pos.push_back(i);
        ++num_groups;
      }
      gids[i] = it->second;
    }
    device::KernelSignature sig;
    sig.op = "group_approximate";
    dev->ChargeKernel(sig, {.elements = n,
                            .bytes_read = n * (sizeof(cs::oid_t) + key_bytes),
                            .bytes_written = n * sizeof(uint32_t),
                            .ops = 3 * n,
                            .distinct_write_targets =
                                std::max<uint64_t>(num_groups, 1)});
  } else {
    first_pos.push_back(0);
  }

  // --- approximate aggregation with certainty/membership gates ------------
  uint64_t num_certain = 0;
  for (const uint8_t c : certain) num_certain += c;
  std::vector<int64_t> cnt_hi(num_groups, 0), cnt_lo(num_groups, 0);
  for (uint64_t i = 0; i < n; ++i) {
    cnt_hi[gids[i]] += 1;
    if (certain[i]) cnt_lo[gids[i]] += 1;
  }
  if (!keys_exact) {
    // Inexact key digits may split a digit group into several exact
    // groups; only subset-sound lower ends survive.
    std::fill(cnt_lo.begin(), cnt_lo.end(), 0);
  }

  ApproximateAnswer approx;
  approx.row_count = {static_cast<int64_t>(num_certain),
                      static_cast<int64_t>(n)};
  approx.key_bounds.resize(num_groups);
  approx.agg_bounds.resize(num_groups);
  if (grouped) {
    for (uint64_t g = 0; g < num_groups; ++g) {
      for (uint64_t k = 0; k < group_by.size(); ++k) {
        const bwd::DecompositionSpec& kspec = key_cols[k]->spec();
        approx.key_bounds[g].push_back(
            ValueBounds{kspec.LowerBound(key_digits[g][k]),
                        kspec.UpperBound(key_digits[g][k])});
      }
    }
  }

  for (const PlanAggregate& agg : plan.group_agg.aggregates) {
    // Per-row contribution interval to the group aggregate, computed in
    // one device pass: term digit bounds -> affine -> interval product ->
    // filter gate -> candidate-membership gate.
    std::vector<const bwd::BwdColumn*> tcols;
    uint64_t agg_bytes = sizeof(cs::oid_t);
    for (const PlanTerm& t : agg.terms) {
      tcols.push_back(&hops[t.col.hop]->column(t.col.column));
      agg_bytes += std::max<uint64_t>(
          (tcols.back()->spec().approximation_bits() + 7) / 8, 1);
    }
    const bwd::BwdColumn* fcol = nullptr;
    std::optional<RelaxedPred> frelaxed;
    if (agg.filter.has_value()) {
      fcol = &hops[agg.filter->col.hop]->column(agg.filter->col.column);
      frelaxed = RelaxPredicate(fcol->spec(), agg.filter->range);
      agg_bytes +=
          std::max<uint64_t>((fcol->spec().approximation_bits() + 7) / 8, 1);
    }

    std::vector<ValueBounds> contrib(n);   // gated sum contribution
    std::vector<ValueBounds> value(n);     // ungated expression bounds
    std::vector<uint8_t> gate_poss(n, 1), gate_cert(n, 1);
    device::KernelSignature sig;
    sig.op = "aggregate_approximate";
    dev->Launch(
        sig,
        {.elements = n,
         .bytes_read = n * agg_bytes,
         .bytes_written = n * 2 * sizeof(int64_t),
         .ops = n * (3 * std::max<uint64_t>(agg.terms.size(), 1) + 2)},
        [&](uint64_t begin, uint64_t end) {
          for (uint64_t i = begin; i < end; ++i) {
            ValueBounds v = ValueBounds::Exact(1);
            for (uint64_t t = 0; t < agg.terms.size(); ++t) {
              const PlanTerm& term = agg.terms[t];
              const uint64_t row = row_of(term.col.hop, i);
              ValueBounds tb{tcols[t]->ApproxLowerBound(row),
                             tcols[t]->ApproxUpperBound(row)};
              tb = term.sign >= 0 ? tb.Shift(term.offset)
                                  : tb.Negate().Shift(term.offset);
              v = v * tb;
            }
            v = v.Scale(agg.constant);
            value[i] = v;
            if (fcol != nullptr) {
              const uint64_t digit =
                  fcol->approximation().Get(row_of(agg.filter->col.hop, i));
              gate_poss[i] = frelaxed->Matches(digit) ? 1 : 0;
              gate_cert[i] = frelaxed->Certain(digit) ? 1 : 0;
            }
            const ValueBounds gate{gate_poss[i] && gate_cert[i] ? 1 : 0,
                                   gate_poss[i] ? 1 : 0};
            const ValueBounds member{certain[i] ? 1 : 0, 1};
            contrib[i] = v * gate * member;
          }
        });

    for (uint64_t g = 0; g < num_groups; ++g) {
      ValueBounds b{0, 0};
      bool any = false;
      switch (agg.func) {
        case AggFunc::kCount: {
          int64_t lo = 0, hi = 0;
          for (uint64_t i = 0; i < n; ++i) {
            if (gids[i] != g) continue;
            const bool maybe_nonzero =
                gate_poss[i] && !(value[i].lo == 0 && value[i].hi == 0);
            const bool certainly_nonzero =
                certain[i] && gate_cert[i] &&
                (value[i].lo > 0 || value[i].hi < 0);
            hi += maybe_nonzero ? 1 : 0;
            lo += certainly_nonzero ? 1 : 0;
          }
          b = {keys_exact ? lo : 0, hi};
          break;
        }
        case AggFunc::kSum: {
          int64_t lo = 0, hi = 0;
          for (uint64_t i = 0; i < n; ++i) {
            if (gids[i] != g) continue;
            lo += keys_exact ? contrib[i].lo : std::min<int64_t>(0, contrib[i].lo);
            hi += keys_exact ? contrib[i].hi : std::max<int64_t>(0, contrib[i].hi);
          }
          b = {lo, hi};
          break;
        }
        case AggFunc::kAvg: {
          // The average is a convex combination of the (gated) member
          // contributions, so their hull bounds it; a possibly empty group
          // must admit the 0 the engines report for one.
          for (uint64_t i = 0; i < n; ++i) {
            if (gids[i] != g) continue;
            b = any ? ValueBounds{std::min(b.lo, contrib[i].lo),
                                  std::max(b.hi, contrib[i].hi)}
                    : contrib[i];
            any = true;
          }
          if (!any || cnt_lo[g] == 0) {
            b = {std::min<int64_t>(b.lo, 0), std::max<int64_t>(b.hi, 0)};
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          break;  // rejected by ResolveArPlan
      }
      approx.agg_bounds[g].push_back(b);
    }
  }

  // --- phase boundary ------------------------------------------------------
  if (options.on_approximate) options.on_approximate(approx);
  dev->ChargeTransfer(n * (sizeof(cs::oid_t) + 1) +
                      (num_hops - 1) * n * sizeof(cs::oid_t));

  // --- Phase R: exact host refinement over the candidates -----------------
  WallTimer host_timer;
  const ExactGetFn get = [&](uint32_t hop, const std::string& column,
                             uint64_t row) {
    return hops[hop]->column(column).Reconstruct(row);
  };
  const RightValuesFn rights_fn = [&](const std::string& table,
                                      const std::string& column) {
    const bwd::BwdColumn& c = right_tables.at(table)->column(column);
    std::vector<int64_t> out(c.size());
    for (uint64_t i = 0; i < out.size(); ++i) out[i] = c.Reconstruct(i);
    std::sort(out.begin(), out.end());
    return out;
  };

  ArExecution exec;
  exec.approx = std::move(approx);
  exec.num_candidates = n;
  exec.result = EvalPlanExact(plan, fact.num_rows(), get, rights_fn, &cands.ids);
  exec.num_refined = exec.result.selected_rows;
  exec.breakdown.host_seconds = host_timer.Seconds();
  exec.breakdown.host_cpu_seconds = exec.breakdown.host_seconds;
  exec.breakdown.device_seconds = query_clock.device_seconds();
  exec.breakdown.bus_seconds = query_clock.bus_seconds();
  exec.plan_text = plan.ToString();
  return exec;
}

// ---------- streaming general path ---------------------------------------

StatusOr<StreamingExecution> ExecutePlanStreamingGeneral(
    const PhysicalPlan& plan, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache) {
  WN_RETURN_IF_ERROR(ValidatePlan(plan, db));

  StreamingExecution exec;
  device::SimClock::QueryScope query_clock(&dev->clock());

  // Pin every referenced column of every table (LRU-cached raw columns).
  std::map<std::string, std::set<std::string>> inputs;
  const std::vector<std::string> hop_tables = HopTables(plan);
  auto add = [&](const ColumnRef& ref) {
    inputs[hop_tables[ref.hop]].insert(ref.column);
  };
  for (const PlanOp& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      add(ColumnRef{f->column, f->hop});
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      add(ColumnRef{j->fk_column, j->fk_hop});
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      add(ColumnRef{t->left_column, t->left_hop});
      inputs[t->right_table].insert(t->right_column);
    }
  }
  for (const ColumnRef& k : plan.group_agg.group_by) add(k);
  for (const PlanAggregate& a : plan.group_agg.aggregates) {
    for (const PlanTerm& t : a.terms) add(t.col);
    if (a.filter.has_value()) add(a.filter->col);
  }
  for (const auto& [table, columns] : inputs) {
    const cs::Table& t = db.table(table);
    for (const std::string& column : columns) {
      const cs::Column& col = t.column(column);
      WN_ASSIGN_OR_RETURN(
          device::ResidencyCache::Access access,
          cache->Pin(table + "." + column,
                     col.type() == cs::ValueType::kInt32
                         ? static_cast<const void*>(col.I32().data())
                         : static_cast<const void*>(col.I64().data()),
                     col.byte_size()));
      exec.bytes_transferred += access.bytes_transferred;
      exec.cache_hits += access.hit ? 1 : 0;
      exec.cache_misses += access.hit ? 0 : 1;
    }
  }

  WN_ASSIGN_OR_RETURN(exec.result, ExecutePlanClassicGeneral(plan, db));

  // Raw-width kernel charges, one per plan node.
  const uint64_t n = db.table(plan.scan.table).num_rows();
  const uint64_t selected = exec.result.selected_rows;
  device::KernelSignature sig;
  sig.extra = "streaming/raw";
  bool first = true;
  for (const PlanOp& op : plan.ops) {
    const uint64_t in_rows = first ? n : selected;
    if (std::holds_alternative<FilterNode>(op)) {
      sig.op = "uselect_raw";
      dev->ChargeKernel(sig, {.elements = in_rows,
                              .bytes_read = in_rows * sizeof(int32_t) +
                                            (first ? 0 : in_rows * 4),
                              .bytes_written = selected * sizeof(cs::oid_t),
                              .ops = in_rows});
      first = false;
    } else if (std::holds_alternative<FkJoinNode>(op)) {
      sig.op = "fkjoin_raw";
      dev->ChargeKernel(sig, {.elements = in_rows,
                              .bytes_read = in_rows * 2 * sizeof(int32_t),
                              .bytes_written = in_rows * sizeof(int32_t),
                              .ops = in_rows});
      first = false;
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      const uint64_t n_r = db.table(t->right_table).num_rows();
      sig.op = "thetasemi_raw";
      dev->ChargeKernel(sig,
                        {.elements = in_rows,
                         .bytes_read = (in_rows + n_r) * sizeof(int32_t),
                         .bytes_written = selected * sizeof(cs::oid_t),
                         .ops = in_rows});
      first = false;
    }
  }
  if (!plan.group_agg.group_by.empty()) {
    sig.op = "group_raw";
    dev->ChargeKernel(
        sig,
        {.elements = selected,
         .bytes_read =
             selected * (sizeof(int32_t) * plan.group_agg.group_by.size() + 4),
         .bytes_written = selected * sizeof(uint32_t),
         .ops = 3 * selected,
         .distinct_write_targets =
             std::max<uint64_t>(exec.result.num_groups(), 1)});
  }
  for (const PlanAggregate& agg : plan.group_agg.aggregates) {
    sig.op = "aggregate_raw";
    const uint64_t term_bytes =
        std::max<uint64_t>(agg.terms.size(), 1) * sizeof(int32_t);
    dev->ChargeKernel(
        sig, {.elements = selected,
              .bytes_read = selected * (term_bytes + sizeof(uint32_t)),
              .bytes_written = selected * sizeof(int64_t),
              .ops = 2 * selected,
              .distinct_write_targets =
                  std::max<uint64_t>(exec.result.num_groups(), 1)});
  }
  dev->ChargeTransfer(exec.result.num_groups() *
                      (plan.group_agg.group_by.size() +
                       plan.group_agg.aggregates.size()) *
                      sizeof(int64_t));

  exec.breakdown.device_seconds = query_clock.device_seconds();
  exec.breakdown.bus_seconds = query_clock.bus_seconds();
  return exec;
}

}  // namespace

// ---------- plan executors (dispatch) ------------------------------------

StatusOr<ArExecution> ExecutePlanAr(const PhysicalPlan& plan,
                                    const bwd::BwdTable& fact,
                                    const BwdTableMap& dims,
                                    device::Device* dev,
                                    const ArOptions& options) {
  StatusOr<QuerySpec> spec = PlanToSpec(plan);
  if (spec.ok()) {
    const QuerySpec& query = spec.value();
    const bwd::BwdTable* dim = nullptr;
    if (query.join.has_value()) {
      auto it = dims.find(query.join->dim_table);
      if (it != dims.end()) dim = it->second;
    }
    return detail::ExecuteArLegacy(query, fact, dim, dev, options);
  }
  return ExecutePlanArGeneral(plan, fact, dims, dev, options);
}

StatusOr<QueryResult> ExecutePlanClassic(const PhysicalPlan& plan,
                                         const cs::Database& db,
                                         const ClassicOptions& options) {
  StatusOr<QuerySpec> spec = PlanToSpec(plan);
  if (spec.ok()) return detail::ExecuteClassicLegacy(spec.value(), db, options);
  return ExecutePlanClassicGeneral(plan, db);
}

StatusOr<StreamingExecution> ExecutePlanStreaming(
    const PhysicalPlan& plan, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache) {
  StatusOr<QuerySpec> spec = PlanToSpec(plan);
  if (spec.ok()) {
    return detail::ExecuteStreamingLegacy(spec.value(), db, dev, cache);
  }
  return ExecutePlanStreamingGeneral(plan, db, dev, cache);
}

// ---------- public engine entry points -----------------------------------
//
// The engines' public entry points now lower through the plan layer; on
// every QuerySpec the round trip LowerToPlan -> PlanToSpec is the identity,
// so they dispatch straight onto the legacy bodies.

StatusOr<ArExecution> ExecuteAr(const QuerySpec& query,
                                const bwd::BwdTable& fact,
                                const bwd::BwdTable* dim,
                                device::Device* dev,
                                const ArOptions& options) {
  BwdTableMap dims;
  if (query.join.has_value() && dim != nullptr) {
    dims[query.join->dim_table] = dim;
  }
  return ExecutePlanAr(LowerToPlan(query), fact, dims, dev, options);
}

StatusOr<QueryResult> ExecuteClassic(const QuerySpec& query,
                                     const cs::Database& db,
                                     const ClassicOptions& options) {
  return ExecutePlanClassic(LowerToPlan(query), db, options);
}

StatusOr<StreamingExecution> ExecuteStreaming(const QuerySpec& query,
                                              const cs::Database& db,
                                              device::Device* dev,
                                              device::ResidencyCache* cache) {
  return ExecutePlanStreaming(LowerToPlan(query), db, dev, cache);
}

}  // namespace wastenot::core
