// A&R selection (paper §IV-B).
//
// The approximation relaxes the predicate so that every value whose
// approximation matches a matching value's approximation qualifies — the
// f(x) table of the paper, which in the packed digit domain collapses to
// inclusive digit-range comparison — and scans the device-resident packed
// approximation. The result is a candidate id superset plus, per
// candidate, the approximate value (lower bound) and a *certainty* flag
// (the whole approximation interval satisfies the precise predicate; used
// for approximate-answer bounds and min/max error propagation, Fig 6).
//
// The refinement (Algorithm 2) joins candidates with the residual
// (an invisible join on the persistent, dense residual), reconstructs the
// exact value by bitwise concatenation, and re-evaluates the precise
// predicate — all in one fused loop.

#ifndef WASTENOT_CORE_SELECT_H_
#define WASTENOT_CORE_SELECT_H_

#include <span>
#include <vector>

#include "bwd/bwd_column.h"
#include "columnstore/types.h"
#include "core/candidates.h"
#include "device/device.h"
#include "util/thread_pool.h"

namespace wastenot::core {

/// A predicate translated into the packed-digit domain of a decomposition.
struct RelaxedPred {
  uint64_t lo_digit = 0;       ///< smallest candidate digit
  uint64_t hi_digit = 0;       ///< largest candidate digit (inclusive)
  uint64_t certain_lo = 1;     ///< digits in [certain_lo, certain_hi] are
  uint64_t certain_hi = 0;     ///< certain matches (empty when lo > hi)
  bool none = false;           ///< predicate selects nothing

  /// True when `digit` may contain a matching value (candidate test).
  bool Matches(uint64_t digit) const {
    return !none && digit >= lo_digit && digit <= hi_digit;
  }
  /// True when every value in `digit`'s interval matches (certainty test).
  bool Certain(uint64_t digit) const {
    return digit >= certain_lo && digit <= certain_hi;
  }
};

/// Relaxes an exact value predicate into digit space (f(x) of §IV-B).
/// Guarantees the superset property: any value satisfying `pred` has a
/// digit within the relaxed range. Pure function; thread-safe.
RelaxedPred RelaxPredicate(const bwd::DecompositionSpec& spec,
                           const cs::RangePred& pred);

/// Output of an approximate selection.
struct ApproxSelection {
  Candidates cands;              ///< candidate ids (superset of exact)
  ApproxValues values;           ///< this column's approximations, aligned
  std::vector<uint8_t> certain;  ///< 1 = certainly satisfies the predicate
  uint64_t num_certain = 0;
  /// For chained selections: position of each surviving candidate within
  /// the *input* candidate list, so callers can compact other aligned
  /// payloads. Empty for a full-column scan.
  cs::OidVec kept_positions;
};

/// Full-column approximate selection on the device. Output candidate ids
/// are ascending (`cands.sorted`), bit-identically reproducible run to
/// run. Not thread-safe with respect to `dev` (device charging mutates the
/// simulated clock); distinct calls on distinct devices may run
/// concurrently.
ApproxSelection SelectApproximate(const bwd::BwdColumn& column,
                                  const cs::RangePred& pred,
                                  device::Device* dev);

/// Chained approximate selection restricted to `in` (device gather +
/// filter). Produces kept_positions into `in`; the output preserves the
/// permutation of `in` (survivors appear in input order). Same device
/// thread-safety caveat as SelectApproximate.
ApproxSelection SelectApproximateOn(const bwd::BwdColumn& column,
                                    const cs::RangePred& pred,
                                    const Candidates& in,
                                    device::Device* dev);

/// One conjunct of a fused refinement.
struct PredicateRefinement {
  const bwd::BwdColumn* column = nullptr;
  cs::RangePred pred;
  /// This column's approximations aligned with the candidate list (the
  /// approximation operator's downloaded output). May be null: the refine
  /// then reads the column's cached approximation digits by id.
  const ApproxValues* approx = nullptr;
};

/// Output of a (fused) selection refinement.
struct RefinedSelection {
  cs::OidVec ids;        ///< exact result ids, in candidate order
  cs::OidVec positions;  ///< index of each result row in the candidate list
  /// Exact values of each refined conjunct column (aligned with ids), in
  /// the order the conjuncts were given; filled when requested.
  std::vector<std::vector<int64_t>> exact_values;
};

/// Algorithm 2, fused over all conjuncts: one pass over the candidates,
/// reconstructing exact values and re-evaluating every precise predicate.
///
/// Morsel-parallel over `ctx` (block-aligned morsels, per-morsel counts →
/// prefix-sum offsets → parallel fill): the output — ids, positions and
/// exact_values — preserves candidate order and is bit-identical whether
/// run serially (default ctx) or on any pool size. Thread-safe: reads are
/// shared-only, writes go to disjoint output ranges.
RefinedSelection SelectRefine(const Candidates& cands,
                              std::span<const PredicateRefinement> conjuncts,
                              bool keep_values = false,
                              const MorselContext& ctx = {});

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_SELECT_H_
