#include "core/group.h"

#include <bit>
#include <limits>

#include "bwd/packed_codec.h"
#include "core/translucent_join.h"
#include "util/bits.h"
#include "util/random.h"

namespace wastenot::core {

namespace {

/// Linear-probing 64-bit-key -> dense-group-id table (device stand-in for
/// the massively parallel hash build; the cost model pays the conflicts).
/// Grows (rehashes) beyond 50% load so unknown group cardinalities are safe.
class DigitGroupTable {
 public:
  explicit DigitGroupTable(uint64_t expected) {
    Rehash(std::bit_ceil(std::max<uint64_t>(expected * 2, 16)));
  }

  /// Returns the dense id of `key`; sets *fresh when the key was new.
  uint32_t IdOf(uint64_t key, uint64_t* num_groups, bool* fresh) {
    if ((entries_ + 1) * 2 > keys_.size()) Rehash(keys_.size() * 2);
    uint64_t slot = Mix64(key) & mask_;
    for (;;) {
      if (keys_[slot] == kEmpty) {
        keys_[slot] = key;
        ids_[slot] = static_cast<uint32_t>((*num_groups)++);
        ++entries_;
        *fresh = true;
        return ids_[slot];
      }
      if (keys_[slot] == key) {
        *fresh = false;
        return ids_[slot];
      }
      slot = (slot + 1) & mask_;
    }
  }

 private:
  void Rehash(uint64_t cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_ids = std::move(ids_);
    mask_ = cap - 1;
    keys_.assign(cap, kEmpty);
    ids_.assign(cap, 0);
    for (uint64_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      uint64_t slot = Mix64(old_keys[i]) & mask_;
      while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      ids_[slot] = old_ids[i];
    }
  }

  static constexpr uint64_t kEmpty = std::numeric_limits<uint64_t>::max();
  uint64_t mask_ = 0;
  uint64_t entries_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> ids_;
};

void ChargeGroupKernel(const bwd::DecompositionSpec& spec, uint64_t n,
                       uint64_t num_groups, bool candidates, bool chained,
                       device::Device* dev) {
  device::KernelSignature sig;
  sig.op = "group_approximate";
  sig.value_bits = spec.value_bits;
  sig.packed_bits = spec.approximation_bits();
  sig.prefix_base = spec.prefix_base;
  sig.extra = std::string(candidates ? "cand" : "full") +
              (chained ? "/derive" : "/new");
  // Candidate scans gather digits randomly (whole-byte granularity);
  // full scans stream the packed payload.
  const uint64_t digit_bytes = device::PackedReadBytes(
      spec.approximation_bits(), n, /*gather=*/candidates);
  dev->ChargeKernel(
      sig,
      {.elements = n,
       .bytes_read = digit_bytes +
                     n * ((candidates ? sizeof(cs::oid_t) : 0) +
                          (chained ? sizeof(uint32_t) : 0)),
       .bytes_written = n * sizeof(uint32_t),
       .ops = 3 * n,
       .distinct_write_targets = std::max<uint64_t>(num_groups, 1)});
}

}  // namespace

ApproxGrouping GroupApproximate(const bwd::BwdColumn& column,
                                const Candidates* cands,
                                device::Device* dev) {
  const bwd::PackedView view = column.approximation();
  const uint64_t n = cands != nullptr ? cands->size() : column.size();

  ApproxGrouping out;
  out.group_ids.resize(n);
  DigitGroupTable table(1024);
  uint64_t digits[bwd::kPackedBlockElems];
  for (uint64_t b0 = 0; b0 < n; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - b0, bwd::kPackedBlockElems));
    if (cands != nullptr) {
      bwd::GatherPacked(view, cands->ids.data() + b0, lanes, digits);
    } else {
      bwd::UnpackRange(view, b0, lanes, digits);
    }
    for (uint32_t j = 0; j < lanes; ++j) {
      bool fresh = false;
      out.group_ids[b0 + j] = table.IdOf(digits[j], &out.num_groups, &fresh);
      if (fresh) out.first_positions.push_back(b0 + j);
    }
  }
  ChargeGroupKernel(column.spec(), n, out.num_groups, cands != nullptr,
                    /*chained=*/false, dev);
  return out;
}

ApproxGrouping GroupApproximateSub(const bwd::BwdColumn& column,
                                   const Candidates* cands,
                                   const ApproxGrouping& prior,
                                   device::Device* dev) {
  const bwd::PackedView view = column.approximation();
  const uint64_t n = prior.group_ids.size();

  ApproxGrouping out;
  out.group_ids.resize(n);
  DigitGroupTable table(prior.num_groups * 4 + 16);
  uint64_t digits[bwd::kPackedBlockElems];
  for (uint64_t b0 = 0; b0 < n; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - b0, bwd::kPackedBlockElems));
    if (cands != nullptr) {
      bwd::GatherPacked(view, cands->ids.data() + b0, lanes, digits);
    } else {
      bwd::UnpackRange(view, b0, lanes, digits);
    }
    for (uint32_t j = 0; j < lanes; ++j) {
      // Combine (prior group, digit); the mix decorrelates the halves.
      const uint64_t key =
          Mix64(static_cast<uint64_t>(prior.group_ids[b0 + j]) *
                    0x9e3779b97f4a7c15ULL ^
                digits[j]);
      bool fresh = false;
      out.group_ids[b0 + j] = table.IdOf(key, &out.num_groups, &fresh);
      if (fresh) out.first_positions.push_back(b0 + j);
    }
  }
  ChargeGroupKernel(column.spec(), n, out.num_groups, cands != nullptr,
                    /*chained=*/true, dev);
  return out;
}

namespace {

/// One morsel's partial grouping: rows mapped to *local* dense ids plus
/// the distinct keys in local first-seen order (what the merge consumes).
struct GroupFragment {
  std::vector<uint32_t> local_ids;         ///< local group id per morsel row
  std::vector<uint64_t> fresh_keys;        ///< local first-seen order
  std::vector<cs::oid_t> fresh_first_ids;  ///< first member per fresh key
};

}  // namespace

StatusOr<RefinedGrouping> GroupRefine(
    std::span<const bwd::BwdColumn* const> columns, const ApproxGrouping& pre,
    const Candidates& cands, const cs::OidVec& refined_ids,
    const MorselContext& ctx) {
  // Step 1: translucent join — align the pre-grouping (aligned with the
  // candidate list) with the refined subset.
  WN_ASSIGN_OR_RETURN(
      cs::OidVec positions,
      TranslucentJoinPositionsAuto(
          std::span<const cs::oid_t>(cands.ids.data(), cands.ids.size()),
          std::span<const cs::oid_t>(refined_ids.data(), refined_ids.size())));

  RefinedGrouping out;
  const uint64_t n = refined_ids.size();
  out.group_ids.resize(n);
  if (n == 0) return out;

  bool any_residual = false;
  uint64_t residual_bits = 0;
  for (const bwd::BwdColumn* col : columns) {
    if (!col->spec().fully_resident()) {
      any_residual = true;
      residual_bits += col->spec().residual_bits;
    }
  }

  // Step 2 (morselized): each morsel computes its rows' group keys — the
  // pre-group id alone when every grouping column is fully resident (the
  // pre-groups are then exact and only emptied groups get compacted away),
  // otherwise the pre-group id mixed with the residual digits of every
  // decomposed column (the subgrouping; the same invisible-join gather as
  // refinement) — and assigns dense *local* ids from a per-morsel table.
  const uint64_t morsel = AlignMorsel(
      ctx.morsel_elems != 0 ? ctx.morsel_elems
                            : MorselElems(32 + residual_bits + 64));
  const uint64_t num_morsels = bits::CeilDiv(n, morsel);
  std::vector<GroupFragment> fragments(num_morsels);
  // Per-worker dense-remap scratch for the fully-resident fast path:
  // initialized once per worker (not per morsel) and invalidated between
  // morsels by a generation mark, so the whole loop stays
  // O(workers * num_groups + n) — the serial case matches the pre-morsel
  // compaction exactly.
  struct RemapScratch {
    std::vector<uint32_t> gen;  ///< morsel index + 1 that last wrote a slot
    std::vector<uint32_t> id;   ///< that morsel's local id for the slot
  };
  std::vector<RemapScratch> scratch(ctx.workers());
  ParallelForBlocks(ctx, n, morsel, [&](uint64_t mb, uint64_t me, unsigned w) {
    GroupFragment& frag = fragments[mb / morsel];
    frag.local_ids.resize(me - mb);
    if (!any_residual) {
      // Fast path: keys are the (already dense) pre-group ids, so the
      // per-worker remap array replaces the hash table — one O(1) index
      // per row.
      RemapScratch& s = scratch[w];
      if (s.gen.size() != pre.num_groups) {
        s.gen.assign(pre.num_groups, 0);
        s.id.resize(pre.num_groups);
      }
      const uint32_t mark = static_cast<uint32_t>(mb / morsel) + 1;
      for (uint64_t i = mb; i < me; ++i) {
        const uint32_t g = pre.group_ids[positions[i]];
        if (s.gen[g] != mark) {
          s.gen[g] = mark;
          s.id[g] = static_cast<uint32_t>(frag.fresh_keys.size());
          frag.fresh_keys.push_back(g);
          frag.fresh_first_ids.push_back(refined_ids[i]);
        }
        frag.local_ids[i - mb] = s.id[g];
      }
      return;
    }
    DigitGroupTable table(256);
    uint64_t num_local = 0;
    uint64_t keys[bwd::kPackedBlockElems];
    uint64_t res_digits[bwd::kPackedBlockElems];
    for (uint64_t b0 = mb; b0 < me; b0 += bwd::kPackedBlockElems) {
      const uint32_t lanes =
          static_cast<uint32_t>(std::min(me - b0, bwd::kPackedBlockElems));
      for (uint32_t j = 0; j < lanes; ++j) {
        keys[j] = pre.group_ids[positions[b0 + j]];
      }
      for (const bwd::BwdColumn* col : columns) {
        if (col->spec().fully_resident()) continue;
        bwd::GatherPacked(col->residual().view(), refined_ids.data() + b0,
                          lanes, res_digits);
        for (uint32_t j = 0; j < lanes; ++j) {
          keys[j] = Mix64(keys[j] * 0x9e3779b97f4a7c15ULL ^ res_digits[j]);
        }
      }
      for (uint32_t j = 0; j < lanes; ++j) {
        bool fresh = false;
        frag.local_ids[b0 - mb + j] = table.IdOf(keys[j], &num_local, &fresh);
        if (fresh) {
          frag.fresh_keys.push_back(keys[j]);
          frag.fresh_first_ids.push_back(refined_ids[b0 + j]);
        }
      }
    }
  });

  // Merge the partial tables by key: walking morsels in order and each
  // morsel's fresh keys in local first-seen order visits keys in exactly
  // the global first-occurrence order a single serial pass would, so the
  // dense ids (and first_ids) come out bit-identical to the serial result.
  DigitGroupTable global_table(pre.num_groups * 4 + 16);
  std::vector<std::vector<uint32_t>> remap(num_morsels);
  for (uint64_t m = 0; m < num_morsels; ++m) {
    const GroupFragment& frag = fragments[m];
    remap[m].resize(frag.fresh_keys.size());
    for (uint64_t k = 0; k < frag.fresh_keys.size(); ++k) {
      bool fresh = false;
      remap[m][k] =
          global_table.IdOf(frag.fresh_keys[k], &out.num_groups, &fresh);
      if (fresh) out.first_ids.push_back(frag.fresh_first_ids[k]);
    }
  }

  // Rewrite each morsel's local ids through its remap (disjoint ranges).
  ParallelForBlocks(ctx, n, morsel, [&](uint64_t mb, uint64_t me, unsigned) {
    const GroupFragment& frag = fragments[mb / morsel];
    const std::vector<uint32_t>& r = remap[mb / morsel];
    for (uint64_t i = mb; i < me; ++i) {
      out.group_ids[i] = r[frag.local_ids[i - mb]];
    }
  });
  return out;
}

}  // namespace wastenot::core
