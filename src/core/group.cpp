#include "core/group.h"

#include <bit>
#include <limits>

#include "bwd/packed_codec.h"
#include "core/translucent_join.h"
#include "util/bits.h"
#include "util/random.h"

namespace wastenot::core {

namespace {

/// Linear-probing 64-bit-key -> dense-group-id table (device stand-in for
/// the massively parallel hash build; the cost model pays the conflicts).
/// Grows (rehashes) beyond 50% load so unknown group cardinalities are safe.
class DigitGroupTable {
 public:
  explicit DigitGroupTable(uint64_t expected) {
    Rehash(std::bit_ceil(std::max<uint64_t>(expected * 2, 16)));
  }

  /// Returns the dense id of `key`; sets *fresh when the key was new.
  uint32_t IdOf(uint64_t key, uint64_t* num_groups, bool* fresh) {
    if ((entries_ + 1) * 2 > keys_.size()) Rehash(keys_.size() * 2);
    uint64_t slot = Mix64(key) & mask_;
    for (;;) {
      if (keys_[slot] == kEmpty) {
        keys_[slot] = key;
        ids_[slot] = static_cast<uint32_t>((*num_groups)++);
        ++entries_;
        *fresh = true;
        return ids_[slot];
      }
      if (keys_[slot] == key) {
        *fresh = false;
        return ids_[slot];
      }
      slot = (slot + 1) & mask_;
    }
  }

 private:
  void Rehash(uint64_t cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_ids = std::move(ids_);
    mask_ = cap - 1;
    keys_.assign(cap, kEmpty);
    ids_.assign(cap, 0);
    for (uint64_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      uint64_t slot = Mix64(old_keys[i]) & mask_;
      while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      ids_[slot] = old_ids[i];
    }
  }

  static constexpr uint64_t kEmpty = std::numeric_limits<uint64_t>::max();
  uint64_t mask_ = 0;
  uint64_t entries_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> ids_;
};

void ChargeGroupKernel(const bwd::DecompositionSpec& spec, uint64_t n,
                       uint64_t num_groups, bool candidates, bool chained,
                       device::Device* dev) {
  device::KernelSignature sig;
  sig.op = "group_approximate";
  sig.value_bits = spec.value_bits;
  sig.packed_bits = spec.approximation_bits();
  sig.prefix_base = spec.prefix_base;
  sig.extra = std::string(candidates ? "cand" : "full") +
              (chained ? "/derive" : "/new");
  // Candidate scans gather digits randomly (whole-byte granularity);
  // full scans stream the packed payload.
  const uint64_t digit_bytes = device::PackedReadBytes(
      spec.approximation_bits(), n, /*gather=*/candidates);
  dev->ChargeKernel(
      sig,
      {.elements = n,
       .bytes_read = digit_bytes +
                     n * ((candidates ? sizeof(cs::oid_t) : 0) +
                          (chained ? sizeof(uint32_t) : 0)),
       .bytes_written = n * sizeof(uint32_t),
       .ops = 3 * n,
       .distinct_write_targets = std::max<uint64_t>(num_groups, 1)});
}

}  // namespace

ApproxGrouping GroupApproximate(const bwd::BwdColumn& column,
                                const Candidates* cands,
                                device::Device* dev) {
  const bwd::PackedView view = column.approximation();
  const uint64_t n = cands != nullptr ? cands->size() : column.size();

  ApproxGrouping out;
  out.group_ids.resize(n);
  DigitGroupTable table(1024);
  uint64_t digits[bwd::kPackedBlockElems];
  for (uint64_t b0 = 0; b0 < n; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - b0, bwd::kPackedBlockElems));
    if (cands != nullptr) {
      bwd::GatherPacked(view, cands->ids.data() + b0, lanes, digits);
    } else {
      bwd::UnpackRange(view, b0, lanes, digits);
    }
    for (uint32_t j = 0; j < lanes; ++j) {
      bool fresh = false;
      out.group_ids[b0 + j] = table.IdOf(digits[j], &out.num_groups, &fresh);
      if (fresh) out.first_positions.push_back(b0 + j);
    }
  }
  ChargeGroupKernel(column.spec(), n, out.num_groups, cands != nullptr,
                    /*chained=*/false, dev);
  return out;
}

ApproxGrouping GroupApproximateSub(const bwd::BwdColumn& column,
                                   const Candidates* cands,
                                   const ApproxGrouping& prior,
                                   device::Device* dev) {
  const bwd::PackedView view = column.approximation();
  const uint64_t n = prior.group_ids.size();

  ApproxGrouping out;
  out.group_ids.resize(n);
  DigitGroupTable table(prior.num_groups * 4 + 16);
  uint64_t digits[bwd::kPackedBlockElems];
  for (uint64_t b0 = 0; b0 < n; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - b0, bwd::kPackedBlockElems));
    if (cands != nullptr) {
      bwd::GatherPacked(view, cands->ids.data() + b0, lanes, digits);
    } else {
      bwd::UnpackRange(view, b0, lanes, digits);
    }
    for (uint32_t j = 0; j < lanes; ++j) {
      // Combine (prior group, digit); the mix decorrelates the halves.
      const uint64_t key =
          Mix64(static_cast<uint64_t>(prior.group_ids[b0 + j]) *
                    0x9e3779b97f4a7c15ULL ^
                digits[j]);
      bool fresh = false;
      out.group_ids[b0 + j] = table.IdOf(key, &out.num_groups, &fresh);
      if (fresh) out.first_positions.push_back(b0 + j);
    }
  }
  ChargeGroupKernel(column.spec(), n, out.num_groups, cands != nullptr,
                    /*chained=*/true, dev);
  return out;
}

StatusOr<RefinedGrouping> GroupRefine(
    std::span<const bwd::BwdColumn* const> columns, const ApproxGrouping& pre,
    const Candidates& cands, const cs::OidVec& refined_ids) {
  // Step 1: translucent join — align the pre-grouping (aligned with the
  // candidate list) with the refined subset.
  WN_ASSIGN_OR_RETURN(
      cs::OidVec positions,
      TranslucentJoinPositionsAuto(
          std::span<const cs::oid_t>(cands.ids.data(), cands.ids.size()),
          std::span<const cs::oid_t>(refined_ids.data(), refined_ids.size())));

  RefinedGrouping out;
  const uint64_t n = refined_ids.size();
  out.group_ids.resize(n);

  bool any_residual = false;
  for (const bwd::BwdColumn* col : columns) {
    any_residual = any_residual || !col->spec().fully_resident();
  }

  if (!any_residual) {
    // No residuals: pre-groups are exact; compact away emptied groups.
    std::vector<uint32_t> remap(pre.num_groups,
                                std::numeric_limits<uint32_t>::max());
    for (uint64_t i = 0; i < n; ++i) {
      const uint32_t g = pre.group_ids[positions[i]];
      if (remap[g] == std::numeric_limits<uint32_t>::max()) {
        remap[g] = static_cast<uint32_t>(out.num_groups++);
        out.first_ids.push_back(refined_ids[i]);
      }
      out.group_ids[i] = remap[g];
    }
    return out;
  }

  // Step 2: subgrouping — split each pre-group by the residual digits of
  // every decomposed grouping column, block-gathered per column (the same
  // invisible-join access as refinement).
  DigitGroupTable table(pre.num_groups * 4 + 16);
  uint64_t keys[bwd::kPackedBlockElems];
  uint64_t res_digits[bwd::kPackedBlockElems];
  for (uint64_t b0 = 0; b0 < n; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - b0, bwd::kPackedBlockElems));
    for (uint32_t j = 0; j < lanes; ++j) {
      keys[j] = pre.group_ids[positions[b0 + j]];
    }
    for (const bwd::BwdColumn* col : columns) {
      if (col->spec().fully_resident()) continue;
      bwd::GatherPacked(col->residual().view(), refined_ids.data() + b0, lanes,
                        res_digits);
      for (uint32_t j = 0; j < lanes; ++j) {
        keys[j] = Mix64(keys[j] * 0x9e3779b97f4a7c15ULL ^ res_digits[j]);
      }
    }
    for (uint32_t j = 0; j < lanes; ++j) {
      bool fresh = false;
      out.group_ids[b0 + j] = table.IdOf(keys[j], &out.num_groups, &fresh);
      if (fresh) out.first_ids.push_back(refined_ids[b0 + j]);
    }
  }
  return out;
}

}  // namespace wastenot::core
