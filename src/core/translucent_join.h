// The translucent join (paper §IV-A, Algorithm 1).
//
// Joins two id lists A and B on equality under the paper's three
// preconditions:
//   1. A.id and B.id are each duplicate-free,
//   2. B.id ⊆ A.id (B is a foreign-key set into A),
//   3. the elements of B.id appear in the same relative order
//      (permutation) in A.id as in B.id.
// Under these conditions a single forward pass suffices: advance the A
// cursor until it matches the current B element; both lists are consumed in
// O(|A| + |B|) memory accesses and O(|A|) comparisons — cheaper than a
// hash join, more general than an invisible (positional) join.
//
// The canonical use: A is an approximation operator's candidate output
// (arbitrary permutation, possible false positives), B the refined subset
// in the same permutation. The returned positions align any payload that is
// aligned with A to the rows of B.

#ifndef WASTENOT_CORE_TRANSLUCENT_JOIN_H_
#define WASTENOT_CORE_TRANSLUCENT_JOIN_H_

#include <span>

#include "columnstore/types.h"
#include "util/status.h"

namespace wastenot::core {

/// For each element of `b`, the index at which it occurs in `a`
/// (positions are strictly increasing, enabling sequential payload
/// gathers). Fails with PreconditionFailed if some element of `b` is not
/// found in order — i.e. the permutation/subset contract is violated.
StatusOr<cs::OidVec> TranslucentJoinPositions(std::span<const cs::oid_t> a,
                                              std::span<const cs::oid_t> b);

/// Algorithm 1 verbatim, including its invisible-join fast path: when `a`
/// is sorted and dense (a[i] == a[0] + i), positions are computed by
/// subtraction without scanning.
StatusOr<cs::OidVec> TranslucentJoinPositionsAuto(
    std::span<const cs::oid_t> a, std::span<const cs::oid_t> b);

/// True when `a` is sorted and dense (the invisible-join precondition).
bool SortedAndDense(std::span<const cs::oid_t> a);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_TRANSLUCENT_JOIN_H_
