// The classic bulk-processing engine — the paper's CPU-only MonetDB
// baseline. Executes a QuerySpec with materializing bulk operators over
// plain (non-decomposed) columns: selection chains on candidate lists,
// invisible-join projections, hash grouping, grouped aggregation.

#ifndef WASTENOT_CORE_CLASSIC_ENGINE_H_
#define WASTENOT_CORE_CLASSIC_ENGINE_H_

#include "columnstore/database.h"
#include "core/query.h"
#include "util/status.h"

namespace wastenot::storage {
class DeltaBatch;  // storage/delta_store.h
}

namespace wastenot::core {

struct ClassicOptions {
  /// Threads for the selection scans (1 = the single-threaded stream of
  /// the throughput experiment; >1 = intra-operator parallelism).
  unsigned threads = 1;
  /// Unabsorbed fact-table delta rows to union into the result exactly
  /// (see ArOptions::delta). Null = base table only.
  const storage::DeltaBatch* delta = nullptr;
};

/// Executes `query` on the CPU engine. The result is in canonical
/// (key-sorted) order.
StatusOr<QueryResult> ExecuteClassic(const QuerySpec& query,
                                     const cs::Database& db,
                                     const ClassicOptions& options = {});

namespace detail {

/// The original single-join body. The public ExecuteClassic (defined in
/// plan_exec.cpp) routes lowered single-join plans straight back here so
/// results and error statuses stay bit-identical; multi-join plans take
/// the general plan executor.
StatusOr<QueryResult> ExecuteClassicLegacy(const QuerySpec& query,
                                           const cs::Database& db,
                                           const ClassicOptions& options);

}  // namespace detail

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_CLASSIC_ENGINE_H_
