// Radix-clustered bitwise-distributed storage — the physical layout of the
// original BWD prototype (paper §II-A: "the values were (radix-)clustered
// and prefix-compressed within a cluster"; §VI-C3 credits it for the
// prototype's order-of-magnitude gains: clustered indices "improve
// compression as well as access locality").
//
// Rows are reordered by approximation digit (a stable counting sort on the
// major bits). Afterwards:
//   * the device no longer stores per-row digits at all — just one offset
//     per digit (the digit IS the cluster id): the approximation
//     compresses from n·width bits to (#digits+1)·64 bits,
//   * an approximate range selection is two binary searches over the
//     offsets — O(log #digits) instead of a scan,
//   * only the two *boundary* clusters of a range can contain false
//     positives; every interior cluster is certain, so refinement touches
//     at most 2·2^residual_bits rows regardless of selectivity,
//   * the residual is stored in clustered order, making refinement access
//     perfectly sequential (the locality §VI-C3 talks about).
//
// The price is the permutation: results come back as original tuple ids
// via the stored row map (an invisible join), and multi-column queries
// need either shared clustering or id-based re-alignment.

#ifndef WASTENOT_CORE_CLUSTERED_COLUMN_H_
#define WASTENOT_CORE_CLUSTERED_COLUMN_H_

#include <vector>

#include "bwd/bwd_column.h"
#include "core/select.h"
#include "columnstore/column.h"
#include "core/candidates.h"
#include "device/device.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wastenot::core {

/// A radix-clustered, bitwise-distributed column.
class ClusteredBwdColumn {
 public:
  /// Clusters `column` on its approximation digits under the decomposition
  /// that `device_bits` requests, storing cluster offsets on the device
  /// and clustered residuals on the host.
  static StatusOr<ClusteredBwdColumn> Cluster(const cs::Column& column,
                                              uint32_t device_bits,
                                              device::Device* dev,
                                              bwd::Compression compression =
                                                  bwd::Compression::kBitPacked);

  const bwd::DecompositionSpec& spec() const { return spec_; }
  uint64_t size() const { return count_; }
  uint64_t num_clusters() const { return num_digits_; }

  /// Device bytes: the offsets table (the whole approximation!).
  uint64_t device_bytes() const { return offsets_device_.size(); }
  /// Host bytes: clustered residual + the row map.
  uint64_t host_bytes() const {
    return residual_.byte_size() + row_map_.size() * sizeof(cs::oid_t);
  }

  /// Original tuple id of clustered position `pos`.
  cs::oid_t RowAt(uint64_t pos) const { return row_map_[pos]; }

  /// Exact value at clustered position `pos` (digit from the cluster,
  /// residual from host storage).
  int64_t ReconstructAt(uint64_t pos) const;

  /// Approximate selection: binary search over the device-resident
  /// offsets. Candidates are the clustered positions [begin, end);
  /// every position outside the two boundary clusters is certain.
  struct ClusteredSelection {
    uint64_t begin = 0;           ///< first candidate clustered position
    uint64_t end = 0;             ///< one past the last
    uint64_t certain_begin = 0;   ///< interior (certain) sub-range
    uint64_t certain_end = 0;
    uint64_t size() const { return end - begin; }
    uint64_t num_certain() const {
      return certain_end > certain_begin ? certain_end - certain_begin : 0;
    }
  };
  ClusteredSelection SelectApproximate(const cs::RangePred& pred,
                                       device::Device* dev) const;

  /// Refinement: exact original-id result of the predicate. Touches the
  /// residuals of the boundary clusters only. Output is in clustered
  /// position order. Morsel-parallel over `ctx` (boundary clusters walked
  /// per-morsel into fragments, the certain interior copied in parallel);
  /// bit-identical for any pool size, including the serial default.
  cs::OidVec SelectRefine(const ClusteredSelection& sel,
                          const cs::RangePred& pred,
                          const MorselContext& ctx = {}) const;

 private:
  bwd::DecompositionSpec spec_;
  uint64_t count_ = 0;
  uint64_t num_digits_ = 0;
  device::DeviceBuffer offsets_device_;  ///< uint64 per digit + sentinel
  cs::OidVec row_map_;                   ///< clustered pos -> original id
  bwd::PackedVector residual_;                ///< clustered order, host
};

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_CLUSTERED_COLUMN_H_
