// The intermediate data of A&R processing (paper §III): approximation
// operators produce *candidate* results — id supersets and value
// approximations with error bounds — which refinement operators combine
// with residuals into exact results. These types keep the alignment
// contract explicit: an ApproxValues is always positionally aligned with
// the Candidates it was produced for.

#ifndef WASTENOT_CORE_CANDIDATES_H_
#define WASTENOT_CORE_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "columnstore/types.h"
#include "core/bounds.h"

namespace wastenot::core {

/// A candidate tuple-id list produced by an approximation operator.
/// Contains every tuple of the exact result (superset invariant) plus
/// possible false positives that refinement eliminates.
struct Candidates {
  cs::OidVec ids;

  /// True when ids are ascending. A massively parallel device selection is
  /// not order-preserving in general (paper §IV-A item 3); the refinement
  /// contract only requires that later stages preserve *this* permutation.
  bool sorted = false;

  uint64_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }
};

/// Approximate values positionally aligned with a Candidates list:
/// the exact value of row ids[i] lies in [lower[i], lower[i] + error].
/// error == 0 means the values are exact (fully device-resident column).
struct ApproxValues {
  std::vector<int64_t> lower;
  uint64_t error = 0;

  uint64_t size() const { return lower.size(); }
  bool exact() const { return error == 0; }

  ValueBounds BoundsAt(uint64_t i) const {
    return ValueBounds::FromApproximation(lower[i], error);
  }
};

/// Per-row closed intervals, aligned with a Candidates list. The general
/// form ApproxValues degrades into after arithmetic (errors stop being
/// uniform once values are combined).
struct BoundedValues {
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;

  uint64_t size() const { return lo.size(); }

  static BoundedValues FromApprox(const ApproxValues& a) {
    BoundedValues out;
    out.lo = a.lower;
    out.hi.resize(a.lower.size());
    for (uint64_t i = 0; i < a.lower.size(); ++i) {
      out.hi[i] = a.lower[i] + static_cast<int64_t>(a.error);
    }
    return out;
  }

  ValueBounds At(uint64_t i) const { return {lo[i], hi[i]}; }
};

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_CANDIDATES_H_
