#include "core/streaming_engine.h"

#include <algorithm>
#include <set>
#include <string>

#include "core/classic_engine.h"

namespace wastenot::core {

namespace {

/// The distinct fact/dimension columns a query reads.
struct InputSet {
  std::vector<std::string> fact_columns;
  std::vector<std::string> dim_columns;
};

InputSet CollectInputs(const QuerySpec& query) {
  std::set<std::string> fact, dim;
  for (const auto& p : query.predicates) fact.insert(p.column);
  for (const auto& g : query.group_by) fact.insert(g);
  for (const auto& a : query.aggregates) {
    for (const auto& t : a.terms) {
      (t.from_dimension ? dim : fact).insert(t.column);
    }
    if (a.filter.has_value()) dim.insert(a.filter->dim_column);
  }
  if (query.join.has_value()) fact.insert(query.join->fk_column);
  return InputSet{{fact.begin(), fact.end()}, {dim.begin(), dim.end()}};
}

}  // namespace

namespace detail {

StatusOr<StreamingExecution> ExecuteStreamingLegacy(
    const QuerySpec& query, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache) {
  if (!db.HasTable(query.table)) {
    return Status::NotFound("table '" + query.table + "' not found");
  }
  const cs::Table& fact = db.table(query.table);
  const cs::Table* dim = nullptr;
  if (query.join.has_value()) {
    if (!db.HasTable(query.join->dim_table)) {
      return Status::NotFound("dimension table '" + query.join->dim_table +
                              "' not found");
    }
    dim = &db.table(query.join->dim_table);
  }

  // Every input the pin loop below dereferences must exist — pin() reads
  // the column storage directly, so an unknown name would assert inside
  // Table::column before ExecuteClassic could surface a Status.
  const InputSet pre_inputs = CollectInputs(query);
  for (const auto& c : pre_inputs.fact_columns) {
    if (!fact.HasColumn(c)) {
      return Status::InvalidArgument("unknown column '" + c + "' in table '" +
                                     fact.name() + "'");
    }
  }
  if (dim != nullptr) {
    for (const auto& c : pre_inputs.dim_columns) {
      if (!dim->HasColumn(c)) {
        return Status::InvalidArgument("unknown column '" + c +
                                       "' in table '" + dim->name() + "'");
      }
    }
  }

  StreamingExecution exec;
  // Per-query clock attribution (see ar_engine.cpp): concurrent streams on
  // a shared device must not see each other's charges in their breakdowns.
  device::SimClock::QueryScope query_clock(&dev->clock());

  // --- ship inputs to the device (LRU-cached) -----------------------------
  const InputSet inputs = CollectInputs(query);
  auto pin = [&](const cs::Table& table,
                 const std::string& column) -> Status {
    const cs::Column& col = table.column(column);
    WN_ASSIGN_OR_RETURN(device::ResidencyCache::Access access,
                        cache->Pin(table.name() + "." + column,
                                   col.type() == cs::ValueType::kInt32
                                       ? static_cast<const void*>(
                                             col.I32().data())
                                       : static_cast<const void*>(
                                             col.I64().data()),
                                   col.byte_size()));
    exec.bytes_transferred += access.bytes_transferred;
    exec.cache_hits += access.hit ? 1 : 0;
    exec.cache_misses += access.hit ? 0 : 1;
    return Status::OK();
  };
  for (const auto& c : inputs.fact_columns) WN_RETURN_IF_ERROR(pin(fact, c));
  if (dim != nullptr) {
    for (const auto& c : inputs.dim_columns) WN_RETURN_IF_ERROR(pin(*dim, c));
  }

  // --- device kernels at raw column width ---------------------------------
  // The result itself is computed exactly by the bulk operators (our
  // "device" executes on host memory anyway); the charges below model what
  // each streaming kernel reads and writes.
  ClassicOptions copts;
  copts.threads = 1;
  WN_ASSIGN_OR_RETURN(exec.result, ExecuteClassicLegacy(query, db, copts));

  const uint64_t n = fact.num_rows();
  const uint64_t selected = exec.result.selected_rows;
  device::KernelSignature sig;
  sig.extra = "streaming/raw";
  bool first_pred = true;
  for (const auto& p : query.predicates) {
    const uint64_t in_rows = first_pred ? n : selected;
    sig.op = "uselect_raw";
    sig.value_bits = 32;
    sig.packed_bits = 32;
    dev->ChargeKernel(sig, {.elements = in_rows,
                            .bytes_read = in_rows * sizeof(int32_t) +
                                          (first_pred ? 0 : in_rows * 4),
                            .bytes_written = selected * sizeof(cs::oid_t),
                            .ops = in_rows});
    first_pred = false;
    (void)p;
  }
  if (query.join.has_value()) {
    sig.op = "fkjoin_raw";
    dev->ChargeKernel(sig, {.elements = selected,
                            .bytes_read = selected * 2 * sizeof(int32_t),
                            .bytes_written = selected * sizeof(int32_t),
                            .ops = selected});
  }
  if (!query.group_by.empty()) {
    sig.op = "group_raw";
    dev->ChargeKernel(
        sig, {.elements = selected,
              .bytes_read = selected *
                            (sizeof(int32_t) * query.group_by.size() + 4),
              .bytes_written = selected * sizeof(uint32_t),
              .ops = 3 * selected,
              .distinct_write_targets =
                  std::max<uint64_t>(exec.result.num_groups(), 1)});
  }
  for (const auto& agg : query.aggregates) {
    sig.op = "aggregate_raw";
    const uint64_t term_bytes =
        std::max<uint64_t>(agg.terms.size(), 1) * sizeof(int32_t);
    dev->ChargeKernel(
        sig, {.elements = selected,
              .bytes_read = selected * (term_bytes + sizeof(uint32_t)),
              .bytes_written = selected * sizeof(int64_t),
              .ops = 2 * selected,
              .distinct_write_targets =
                  std::max<uint64_t>(exec.result.num_groups(), 1)});
  }
  // Result download (tiny).
  dev->ChargeTransfer(exec.result.num_groups() *
                      (query.group_by.size() + query.aggregates.size()) *
                      sizeof(int64_t));

  exec.breakdown.device_seconds = query_clock.device_seconds();
  exec.breakdown.bus_seconds = query_clock.bus_seconds();
  return exec;
}

}  // namespace detail

}  // namespace wastenot::core
