#include "core/classic_engine.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "columnstore/aggregate.h"
#include "columnstore/fetch.h"
#include "columnstore/group.h"
#include "columnstore/select.h"

namespace wastenot::core {

namespace {

/// Evaluates one term (offset + sign·col) for the selected rows; dimension
/// terms read through the fk mapping (an invisible join into the dimension).
StatusOr<std::vector<int64_t>> EvalTerm(const Term& term,
                                        const cs::Table& fact,
                                        const cs::Table* dim,
                                        const cs::OidVec& rows,
                                        const std::vector<cs::oid_t>& dim_oids) {
  const cs::Table* src = term.from_dimension ? dim : &fact;
  if (src == nullptr || !src->HasColumn(term.column)) {
    return Status::NotFound("aggregate term column '" + term.column +
                            "' not found");
  }
  const cs::Column& col = src->column(term.column);
  std::vector<int64_t> out(rows.size());
  if (term.from_dimension) {
    for (uint64_t i = 0; i < rows.size(); ++i) out[i] = col.Get(dim_oids[i]);
  } else {
    for (uint64_t i = 0; i < rows.size(); ++i) out[i] = col.Get(rows[i]);
  }
  if (term.sign >= 0) {
    if (term.offset != 0) {
      for (auto& v : out) v = term.offset + v;
    }
  } else {
    for (auto& v : out) v = term.offset - v;
  }
  return out;
}

}  // namespace

namespace detail {

StatusOr<QueryResult> ExecuteClassicLegacy(const QuerySpec& query,
                                           const cs::Database& db,
                                           const ClassicOptions& options) {
  if (!db.HasTable(query.table)) {
    return Status::NotFound("table '" + query.table + "' not found");
  }
  const cs::Table& fact = db.table(query.table);
  const cs::Table* dim = nullptr;
  if (query.join.has_value()) {
    if (!db.HasTable(query.join->dim_table)) {
      return Status::NotFound("dimension table '" + query.join->dim_table +
                              "' not found");
    }
    dim = &db.table(query.join->dim_table);
  }

  // Columns the body below dereferences without checking (fk, group keys,
  // aggregate-filter attributes) surface as a Status here rather than a
  // failed map lookup deep inside the operators. Predicate and term
  // columns keep their longstanding NotFound paths.
  if (query.join.has_value() && !fact.HasColumn(query.join->fk_column)) {
    return Status::InvalidArgument("unknown column '" + query.join->fk_column +
                                   "' in table '" + query.table + "'");
  }
  for (const auto& g : query.group_by) {
    if (!fact.HasColumn(g)) {
      return Status::InvalidArgument("unknown column '" + g + "' in table '" +
                                     query.table + "'");
    }
  }
  for (const auto& agg : query.aggregates) {
    if (agg.filter.has_value() && dim != nullptr &&
        !dim->HasColumn(agg.filter->dim_column)) {
      return Status::InvalidArgument(
          "unknown column '" + agg.filter->dim_column + "' in table '" +
          query.join->dim_table + "'");
    }
  }

  // --- Selection chain (bulk uselect with candidate lists) ---------------
  cs::OidVec rows;
  if (query.predicates.empty()) {
    rows.resize(fact.num_rows());
    std::iota(rows.begin(), rows.end(), 0);
  } else {
    for (uint64_t p = 0; p < query.predicates.size(); ++p) {
      const Predicate& pred = query.predicates[p];
      if (!fact.HasColumn(pred.column)) {
        return Status::NotFound("predicate column '" + pred.column +
                                "' not found");
      }
      const cs::Column& col = fact.column(pred.column);
      rows = (p == 0) ? cs::SelectParallel(col, pred.range, options.threads)
                      : cs::SelectCandidates(col, pred.range, rows);
    }
  }

  // --- FK join: positional dimension oids (invisible join) ---------------
  std::vector<cs::oid_t> dim_oids;
  if (query.join.has_value()) {
    const cs::Column& fk = fact.column(query.join->fk_column);
    dim_oids.resize(rows.size());
    for (uint64_t i = 0; i < rows.size(); ++i) {
      dim_oids[i] =
          static_cast<cs::oid_t>(fk.Get(rows[i]) - query.join->fk_base);
    }
  }

  // --- Grouping (hash group + subgroup chain) -----------------------------
  cs::GroupResult grouping;
  if (query.group_by.empty()) {
    grouping.group_ids.assign(rows.size(), 0);
    grouping.num_groups = 1;
    grouping.first_row = {0};
  } else {
    for (uint64_t g = 0; g < query.group_by.size(); ++g) {
      const cs::Column& col = fact.column(query.group_by[g]);
      if (g == 0) {
        grouping = cs::GroupBy(col, rows);
      } else {
        std::vector<int64_t> values(rows.size());
        for (uint64_t i = 0; i < rows.size(); ++i) {
          values[i] = col.Get(rows[i]);
        }
        grouping = cs::SubGroup(grouping, values);
      }
    }
  }
  // A global aggregation always has one (possibly empty) group; a grouped
  // aggregation over zero rows has zero result rows.
  const uint64_t num_groups =
      query.group_by.empty() ? 1 : grouping.num_groups;

  // --- Aggregates ---------------------------------------------------------
  QueryResult result;
  result.selected_rows = rows.size();
  for (const auto& name : query.group_by) result.key_names.push_back(name);
  for (const auto& agg : query.aggregates) {
    result.agg_labels.push_back(agg.label);
  }

  result.group_counts = cs::GroupedCount(grouping.group_ids, num_groups);

  std::vector<std::vector<int64_t>> agg_columns;  // [agg][group]
  for (const Aggregate& agg : query.aggregates) {
    // Per-row expression value: constant * Π terms (empty product = 1).
    std::vector<int64_t> values;
    if (agg.func == AggFunc::kCount && agg.terms.empty()) {
      values.assign(rows.size(), 1);
    } else {
      for (uint64_t t = 0; t < agg.terms.size(); ++t) {
        WN_ASSIGN_OR_RETURN(std::vector<int64_t> term_vals,
                            EvalTerm(agg.terms[t], fact, dim, rows, dim_oids));
        if (t == 0) {
          values = std::move(term_vals);
        } else {
          for (uint64_t i = 0; i < values.size(); ++i) {
            values[i] *= term_vals[i];
          }
        }
      }
      if (values.empty()) values.assign(rows.size(), 1);
      if (agg.constant != 1) {
        for (auto& v : values) v *= agg.constant;
      }
    }
    // CASE WHEN filter: zero out rows whose dimension attribute misses.
    if (agg.filter.has_value()) {
      if (dim == nullptr) {
        return Status::InvalidArgument("aggregate filter requires a join");
      }
      const cs::Column& fcol = dim->column(agg.filter->dim_column);
      for (uint64_t i = 0; i < values.size(); ++i) {
        if (!agg.filter->range.Contains(fcol.Get(dim_oids[i]))) values[i] = 0;
      }
    }

    switch (agg.func) {
      case AggFunc::kCount: {
        std::vector<int64_t> counts(num_groups, 0);
        for (uint64_t i = 0; i < values.size(); ++i) {
          counts[grouping.group_ids[i]] += values[i] != 0 ? 1 : 0;
        }
        agg_columns.push_back(std::move(counts));
        break;
      }
      case AggFunc::kSum:
      case AggFunc::kAvg:
        agg_columns.push_back(
            cs::GroupedSum(values, grouping.group_ids, num_groups));
        break;
      case AggFunc::kMin:
      case AggFunc::kMax: {
        std::vector<int64_t> extrema =
            agg.func == AggFunc::kMin
                ? cs::GroupedMin(values, grouping.group_ids, num_groups)
                : cs::GroupedMax(values, grouping.group_ids, num_groups);
        // SQL would return NULL for an empty group; both engines report 0
        // so results stay comparable.
        for (uint64_t g = 0; g < num_groups; ++g) {
          if (result.group_counts[g] == 0) extrema[g] = 0;
        }
        agg_columns.push_back(std::move(extrema));
        break;
      }
    }
  }

  // --- Materialize result rows --------------------------------------------
  result.group_keys.resize(num_groups);
  result.agg_values.resize(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    if (!query.group_by.empty()) {
      const uint64_t pos = grouping.first_row[g];
      for (const auto& key_col : query.group_by) {
        result.group_keys[g].push_back(
            fact.column(key_col).Get(rows[pos]));
      }
    }
    for (const auto& col : agg_columns) {
      result.agg_values[g].push_back(col[g]);
    }
  }
  result.SortByKeys();
  return result;
}

}  // namespace detail

}  // namespace wastenot::core
