// String-prefix approximation (paper §VII-B, implemented future work).
//
// "In particular string processing on GPUs is still an open problem due to
//  the variable length of string attributes. We believe that our approach
//  can help to solve this problem by approximating variable length strings
//  with a fixed length prefix."
//
// A variable-length string column is approximated by an order-preserving
// fixed-width prefix code (its first K bytes, big-endian) that lives on
// the device — possibly bitwise-decomposed like any other column — while
// the full strings stay host-resident as the "residual". A LIKE 'p%'
// predicate becomes a code-range selection on the device:
//   * pattern length <= K: the range is exact (every candidate matches),
//   * pattern length  > K: candidates share the K-byte prefix and the
//     refinement compares full strings on the host.

#ifndef WASTENOT_CORE_STRING_SELECT_H_
#define WASTENOT_CORE_STRING_SELECT_H_

#include <span>
#include <string>
#include <vector>

#include "bwd/bwd_column.h"
#include "columnstore/column.h"
#include "core/select.h"
#include "device/device.h"
#include "util/status.h"

namespace wastenot::core {

/// Order-preserving code of the first `k` bytes of `s` (big-endian,
/// zero-padded). k in [1, 7] so codes fit comfortably in int64.
int64_t StringPrefixCode(std::string_view s, uint32_t k);

/// The inclusive code range of all strings starting with `prefix`
/// (clipped to the first `k` bytes).
cs::RangePred StringPrefixRange(std::string_view prefix, uint32_t k);

/// Builds the int64 prefix-code column for a host string collection.
cs::Column BuildPrefixCodeColumn(std::span<const std::string> strings,
                                 uint32_t k);

/// Approximate LIKE 'prefix%' on the device-resident prefix codes.
struct StringApproxSelection {
  ApproxSelection inner;  ///< candidates from the code-range selection
  /// True when every candidate provably matches (pattern fits the code
  /// and the code column carries no residual error): refinement may skip
  /// the host string comparison.
  bool exact = false;
};
StringApproxSelection StringPrefixSelectApproximate(
    const bwd::BwdColumn& prefix_codes, std::string_view prefix, uint32_t k,
    device::Device* dev);

/// Refinement: the exact LIKE result, comparing host-resident strings for
/// candidates the approximation could not certify.
cs::OidVec StringPrefixSelectRefine(const StringApproxSelection& approx,
                                    std::span<const std::string> strings,
                                    std::string_view prefix);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_STRING_SELECT_H_
