#include "core/plan.h"

#include <limits>
#include <sstream>

namespace wastenot::core {
namespace {

std::string RangeToString(const cs::RangePred& r) {
  std::ostringstream os;
  os << "[";
  if (r.lo == std::numeric_limits<int64_t>::min()) {
    os << "-inf";
  } else {
    os << r.lo;
  }
  os << ", ";
  if (r.hi == std::numeric_limits<int64_t>::max()) {
    os << "+inf";
  } else {
    os << r.hi;
  }
  os << "]";
  return os.str();
}

std::string RefToString(const ColumnRef& ref) {
  return "h" + std::to_string(ref.hop) + "." + ref.column;
}

const char* ThetaOpToString(ThetaOp op) {
  switch (op) {
    case ThetaOp::kLess:
      return "<";
    case ThetaOp::kLessEqual:
      return "<=";
    case ThetaOp::kBandWithin:
      return "band";
  }
  return "?";
}

Status UnknownColumn(const std::string& table, const std::string& column) {
  return Status::InvalidArgument("unknown column '" + column + "' in table '" +
                                 table + "'");
}

Status CheckColumn(const cs::Database& db, const std::string& table,
                   const std::string& column) {
  if (!db.table(table).HasColumn(column)) return UnknownColumn(table, column);
  return Status::OK();
}

Status CheckTable(const cs::Database& db, const std::string& table) {
  if (!db.HasTable(table)) {
    return Status::InvalidArgument("unknown table '" + table + "'");
  }
  return Status::OK();
}

}  // namespace

uint32_t PhysicalPlan::num_hops() const {
  uint32_t hops = 1;
  for (const auto& op : ops) {
    if (std::holds_alternative<FkJoinNode>(op)) ++hops;
  }
  return hops;
}

std::vector<std::string> HopTables(const PhysicalPlan& plan) {
  std::vector<std::string> tables = {plan.scan.table};
  for (const auto& op : plan.ops) {
    if (const auto* join = std::get_if<FkJoinNode>(&op)) {
      tables.push_back(join->dim_table);
    }
  }
  return tables;
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream os;
  os << "scan(" << scan.table << ")\n";
  for (const auto& op : ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      os << "filter(h" << f->hop << "." << f->column << " in "
         << RangeToString(f->range) << ")\n";
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      os << "fkjoin(h" << j->fk_hop << "." << j->fk_column << " -> "
         << j->dim_table << " base " << j->fk_base << ")\n";
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      os << "thetasemi(h" << t->left_hop << "." << t->left_column << " "
         << ThetaOpToString(t->op) << " " << t->right_table << "."
         << t->right_column;
      if (t->op == ThetaOp::kBandWithin) os << " +-" << t->band;
      os << ")\n";
    } else if (const auto* p = std::get_if<ProjectNode>(&op)) {
      os << "project(";
      for (uint64_t i = 0; i < p->columns.size(); ++i) {
        if (i) os << ", ";
        os << RefToString(p->columns[i]);
      }
      os << ")\n";
    }
  }
  os << "groupagg(keys=[";
  for (uint64_t i = 0; i < group_agg.group_by.size(); ++i) {
    if (i) os << ", ";
    os << RefToString(group_agg.group_by[i]);
  }
  os << "], aggs=[";
  for (uint64_t i = 0; i < group_agg.aggregates.size(); ++i) {
    if (i) os << ", ";
    os << group_agg.aggregates[i].label;
  }
  os << "])";
  return os.str();
}

PhysicalPlan LowerToPlan(const QuerySpec& spec) {
  PhysicalPlan plan;
  plan.scan.table = spec.table;
  plan.name = spec.name;
  for (const auto& pred : spec.predicates) {
    plan.ops.push_back(FilterNode{0, pred.column, pred.range});
  }
  if (spec.join) {
    plan.ops.push_back(
        FkJoinNode{0, spec.join->fk_column, spec.join->dim_table,
                   spec.join->fk_base});
  }
  for (const auto& key : spec.group_by) {
    plan.group_agg.group_by.push_back(ColumnRef{key, 0});
  }
  for (const auto& agg : spec.aggregates) {
    PlanAggregate pa;
    pa.func = agg.func;
    pa.constant = agg.constant;
    pa.label = agg.label;
    pa.display_scale = agg.display_scale;
    for (const auto& term : agg.terms) {
      pa.terms.push_back(PlanTerm{
          ColumnRef{term.column, term.from_dimension ? 1u : 0u}, term.offset,
          term.sign});
    }
    if (agg.filter) {
      pa.filter =
          PlanFilter{ColumnRef{agg.filter->dim_column, 1}, agg.filter->range};
    }
    plan.group_agg.aggregates.push_back(std::move(pa));
  }
  return plan;
}

StatusOr<QuerySpec> PlanToSpec(const PhysicalPlan& plan) {
  const Status general =
      Status::Unsupported("plan does not lower to a single-join QuerySpec");
  QuerySpec spec;
  spec.table = plan.scan.table;
  spec.name = plan.name;
  bool joined = false;
  for (const auto& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      // Filters after the join (or beyond hop 0) have no QuerySpec shape.
      if (f->hop != 0 || joined) return general;
      spec.predicates.push_back(Predicate{f->column, f->range});
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      if (joined || j->fk_hop != 0) return general;
      spec.join = JoinSpec{j->fk_column, j->dim_table, j->fk_base};
      joined = true;
    } else {
      return general;  // ThetaJoinNode / ProjectNode
    }
  }
  for (const auto& key : plan.group_agg.group_by) {
    if (key.hop != 0) return general;
    spec.group_by.push_back(key.column);
  }
  for (const auto& pa : plan.group_agg.aggregates) {
    Aggregate agg;
    agg.func = pa.func;
    agg.constant = pa.constant;
    agg.label = pa.label;
    agg.display_scale = pa.display_scale;
    for (const auto& term : pa.terms) {
      if (term.col.hop > 1) return general;
      agg.terms.push_back(Term{term.col.column, term.offset, term.sign,
                               term.col.hop == 1});
    }
    if (pa.filter) {
      if (pa.filter->col.hop != 1) return general;
      agg.filter = CaseFilter{pa.filter->col.column, pa.filter->range};
    }
    spec.aggregates.push_back(std::move(agg));
  }
  return spec;
}

Status ValidateQuerySpec(const QuerySpec& spec, const cs::Database& db) {
  WN_RETURN_IF_ERROR(CheckTable(db, spec.table));
  for (const auto& pred : spec.predicates) {
    WN_RETURN_IF_ERROR(CheckColumn(db, spec.table, pred.column));
  }
  for (const auto& key : spec.group_by) {
    WN_RETURN_IF_ERROR(CheckColumn(db, spec.table, key));
  }
  if (spec.join) {
    WN_RETURN_IF_ERROR(CheckColumn(db, spec.table, spec.join->fk_column));
    WN_RETURN_IF_ERROR(CheckTable(db, spec.join->dim_table));
  }
  for (const auto& agg : spec.aggregates) {
    // Term columns are left to the engines (NotFound with the term named).
    if (agg.filter) {
      if (!spec.join) {
        return Status::InvalidArgument("aggregate filter requires a join");
      }
      WN_RETURN_IF_ERROR(
          CheckColumn(db, spec.join->dim_table, agg.filter->dim_column));
    }
  }
  return Status::OK();
}

Status ValidatePlan(const PhysicalPlan& plan, const cs::Database& db) {
  WN_RETURN_IF_ERROR(CheckTable(db, plan.scan.table));
  std::vector<std::string> hops = {plan.scan.table};
  auto check_ref = [&](const ColumnRef& ref) -> Status {
    if (ref.hop >= hops.size()) {
      return Status::InvalidArgument("column reference h" +
                                     std::to_string(ref.hop) + "." +
                                     ref.column + " names a hop the plan " +
                                     "has not joined");
    }
    return CheckColumn(db, hops[ref.hop], ref.column);
  };
  for (const auto& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      WN_RETURN_IF_ERROR(check_ref(ColumnRef{f->column, f->hop}));
    } else if (const auto* j = std::get_if<FkJoinNode>(&op)) {
      WN_RETURN_IF_ERROR(check_ref(ColumnRef{j->fk_column, j->fk_hop}));
      WN_RETURN_IF_ERROR(CheckTable(db, j->dim_table));
      hops.push_back(j->dim_table);
    } else if (const auto* t = std::get_if<ThetaJoinNode>(&op)) {
      WN_RETURN_IF_ERROR(check_ref(ColumnRef{t->left_column, t->left_hop}));
      WN_RETURN_IF_ERROR(CheckTable(db, t->right_table));
      WN_RETURN_IF_ERROR(CheckColumn(db, t->right_table, t->right_column));
    } else if (const auto* p = std::get_if<ProjectNode>(&op)) {
      for (const auto& ref : p->columns) WN_RETURN_IF_ERROR(check_ref(ref));
    }
  }
  for (const auto& key : plan.group_agg.group_by) {
    WN_RETURN_IF_ERROR(check_ref(key));
  }
  for (const auto& agg : plan.group_agg.aggregates) {
    for (const auto& term : agg.terms) {
      WN_RETURN_IF_ERROR(check_ref(term.col));
    }
    if (agg.filter) WN_RETURN_IF_ERROR(check_ref(agg.filter->col));
  }
  return Status::OK();
}

device::ServingEstimate EstimatePlanCost(const device::DeviceSpec& spec,
                                         const PhysicalPlan& plan,
                                         device::ServingWorkload w) {
  // Base: the single-join closed form priced over the plan's hop-0 shape.
  uint32_t hop0_filters = 0;
  uint32_t extra_joins = 0;
  uint32_t deep_passes = 0;  // dim filters + theta semi-join passes
  bool joined = false;
  for (const auto& op : plan.ops) {
    if (const auto* f = std::get_if<FilterNode>(&op)) {
      if (f->hop == 0) {
        ++hop0_filters;
      } else {
        ++deep_passes;
      }
    } else if (std::holds_alternative<FkJoinNode>(op)) {
      if (joined) ++extra_joins;
      joined = true;
    } else if (std::holds_alternative<ThetaJoinNode>(op)) {
      ++deep_passes;
    }
  }
  w.num_predicates = hop0_filters > 0 ? hop0_filters : 1;
  const uint32_t num_aggs =
      static_cast<uint32_t>(plan.group_agg.aggregates.size());
  w.num_aggregates = num_aggs > 0 ? num_aggs : 1;
  device::ServingEstimate est = device::EstimateServingCost(spec, w);

  // Node increments: each extra FkJoin gathers one oid per candidate and
  // one packed digit per downstream touch; each dim filter / theta node is
  // one gather-and-test pass over the candidates. A sum of node costs — on
  // lowered single-join plans all increments are zero and the estimate
  // equals EstimateServingCost exactly.
  const uint64_t c = est.expected_candidates;
  const double miss = 1.0 - w.cache_hit_rate;
  const uint32_t passes = extra_joins + deep_passes;
  for (uint32_t i = 0; i < passes; ++i) {
    const uint64_t gather =
        device::PackedReadBytes(w.device_bits, c, /*gather=*/true);
    est.ar_seconds +=
        device::KernelSeconds(spec, gather + c * sizeof(cs::oid_t), 0, c);
    est.classic_seconds += static_cast<double>(c) *
                           (sizeof(cs::oid_t) + sizeof(int32_t)) /
                           w.host_bandwidth;
    est.streaming_seconds +=
        device::KernelSeconds(spec, c * 2 * sizeof(int32_t), 0, c) +
        device::TransferSeconds(
            spec, static_cast<uint64_t>(miss * static_cast<double>(c) *
                                        sizeof(int32_t)));
  }
  // Extra joins also refine host-side: one reconstruct per candidate hop.
  est.ar_seconds += static_cast<double>(c) * extra_joins * w.host_refine_ns *
                    1e-9;
  return est;
}

}  // namespace wastenot::core
