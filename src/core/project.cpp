#include "core/project.h"

#include "util/bits.h"

namespace wastenot::core {

namespace {

device::KernelSignature ProjectSignature(const bwd::DecompositionSpec& spec,
                                         const char* variant) {
  device::KernelSignature sig;
  sig.op = "leftfetchjoin_approximate";
  sig.value_bits = spec.value_bits;
  sig.packed_bits = spec.approximation_bits();
  sig.prefix_base = spec.prefix_base;
  sig.extra = variant;
  return sig;
}

}  // namespace

ApproxValues ProjectApproximate(const bwd::BwdColumn& column,
                                const Candidates& cands,
                                device::Device* dev) {
  const bwd::DecompositionSpec& spec = column.spec();
  const bwd::PackedView view = column.approximation();
  const uint64_t n = cands.size();

  ApproxValues out;
  out.error = spec.error();
  out.lower.resize(n);
  int64_t* lower = out.lower.data();
  const cs::oid_t* ids = cands.ids.data();

  dev->Launch(ProjectSignature(spec, "gather"),
              {.elements = n,
               .bytes_read =
                   n * (sizeof(cs::oid_t) +
                        std::max<uint64_t>(
                            bits::CeilDiv(spec.approximation_bits(), 8), 1)),
               .bytes_written = n * sizeof(int64_t),
               .ops = n},
              [&](uint64_t begin, uint64_t end) {
                for (uint64_t i = begin; i < end; ++i) {
                  lower[i] = spec.LowerBound(view.Get(ids[i]));
                }
              });
  return out;
}

std::vector<int64_t> ProjectRefine(const bwd::BwdColumn& column,
                                   const cs::OidVec& ids,
                                   const ApproxValues* approx_aligned) {
  std::vector<int64_t> out(ids.size());
  const bwd::PackedVector& residual = column.residual();
  if (approx_aligned != nullptr) {
    // Translucent/invisible join of the approximation output with the
    // residual: the aligned lower bounds plus residual digits reassemble
    // the exact values.
    for (uint64_t i = 0; i < ids.size(); ++i) {
      out[i] = approx_aligned->lower[i] +
               static_cast<int64_t>(residual.Get(ids[i]));
    }
  } else {
    for (uint64_t i = 0; i < ids.size(); ++i) {
      out[i] = column.Reconstruct(ids[i]);
    }
  }
  return out;
}

StatusOr<ApproxValues> FkJoinApproximate(const bwd::BwdColumn& fk,
                                         const bwd::BwdColumn& dim_attribute,
                                         const Candidates& cands,
                                         device::Device* dev) {
  if (!fk.spec().fully_resident()) {
    return Status::Unsupported(
        "FK join requires a fully device-resident fk column (got " +
        fk.spec().ToString() + ")");
  }
  const bwd::DecompositionSpec& fk_spec = fk.spec();
  const bwd::DecompositionSpec& attr_spec = dim_attribute.spec();
  const bwd::PackedView fk_view = fk.approximation();
  const bwd::PackedView attr_view = dim_attribute.approximation();
  const uint64_t n = cands.size();

  ApproxValues out;
  out.error = attr_spec.error();
  out.lower.resize(n);
  int64_t* lower = out.lower.data();
  const cs::oid_t* ids = cands.ids.data();

  device::KernelSignature sig = ProjectSignature(attr_spec, "fkjoin");
  dev->Launch(sig,
              {.elements = n,
               .bytes_read =
                   n * (sizeof(cs::oid_t) +
                        std::max<uint64_t>(
                            bits::CeilDiv(fk_spec.approximation_bits(), 8), 1) +
                        std::max<uint64_t>(
                            bits::CeilDiv(attr_spec.approximation_bits(), 8),
                            1)),
               .bytes_written = n * sizeof(int64_t),
               .ops = 2 * n},
              [&](uint64_t begin, uint64_t end) {
                for (uint64_t i = begin; i < end; ++i) {
                  // fk is fully resident: the gathered value is exact.
                  const uint64_t dim_oid = static_cast<uint64_t>(
                      fk_spec.Reassemble(fk_view.Get(ids[i]), 0));
                  lower[i] = attr_spec.LowerBound(attr_view.Get(dim_oid));
                }
              });
  return out;
}

StatusOr<std::vector<int64_t>> FkJoinRefine(const bwd::BwdColumn& fk,
                                            const bwd::BwdColumn& dim_attribute,
                                            const cs::OidVec& ids) {
  if (!fk.spec().fully_resident()) {
    return Status::Unsupported("FK join requires a fully resident fk column");
  }
  std::vector<int64_t> out(ids.size());
  for (uint64_t i = 0; i < ids.size(); ++i) {
    const uint64_t dim_oid =
        static_cast<uint64_t>(fk.Reconstruct(ids[i]));
    out[i] = dim_attribute.Reconstruct(dim_oid);
  }
  return out;
}

}  // namespace wastenot::core
