#include "core/project.h"

#include <algorithm>

#include "bwd/packed_codec.h"
#include "util/bits.h"

namespace wastenot::core {

namespace {

device::KernelSignature ProjectSignature(const bwd::DecompositionSpec& spec,
                                         const char* variant) {
  device::KernelSignature sig;
  sig.op = "leftfetchjoin_approximate";
  sig.value_bits = spec.value_bits;
  sig.packed_bits = spec.approximation_bits();
  sig.prefix_base = spec.prefix_base;
  sig.extra = variant;
  return sig;
}

}  // namespace

ApproxValues ProjectApproximate(const bwd::BwdColumn& column,
                                const Candidates& cands,
                                device::Device* dev) {
  const bwd::DecompositionSpec& spec = column.spec();
  const bwd::PackedView view = column.approximation();
  const uint64_t n = cands.size();

  ApproxValues out;
  out.error = spec.error();
  out.lower.resize(n);
  int64_t* lower = out.lower.data();
  const cs::oid_t* ids = cands.ids.data();

  dev->Launch(
      ProjectSignature(spec, "gather"),
      {.elements = n,
       .bytes_read = n * sizeof(cs::oid_t) +
                     device::PackedReadBytes(spec.approximation_bits(), n,
                                             /*gather=*/true),
       .bytes_written = n * sizeof(int64_t),
       .ops = n},
      [&](uint64_t begin, uint64_t end) {
        uint64_t digits[bwd::kPackedBlockElems];
        for (uint64_t b0 = begin; b0 < end; b0 += bwd::kPackedBlockElems) {
          const uint32_t lanes = static_cast<uint32_t>(
              std::min(end - b0, bwd::kPackedBlockElems));
          bwd::GatherPacked(view, ids + b0, lanes, digits);
          for (uint32_t j = 0; j < lanes; ++j) {
            lower[b0 + j] = spec.LowerBound(digits[j]);
          }
        }
      });
  return out;
}

std::vector<int64_t> ProjectRefine(const bwd::BwdColumn& column,
                                   const cs::OidVec& ids,
                                   const ApproxValues* approx_aligned,
                                   const MorselContext& ctx) {
  const uint64_t n = ids.size();
  std::vector<int64_t> out(n);
  const bwd::PackedView residual = column.residual().view();
  const uint64_t morsel = ctx.morsel_elems != 0
                              ? ctx.morsel_elems
                              : MorselElems(column.spec().value_bits + 64);
  if (approx_aligned != nullptr) {
    // Translucent/invisible join of the approximation output with the
    // residual: the aligned lower bounds plus block-gathered residual
    // digits reassemble the exact values. Each morsel writes a disjoint,
    // positionally-aligned output range.
    ParallelForBlocks(ctx, n, morsel, [&](uint64_t mb, uint64_t me, unsigned) {
      uint64_t res_digits[bwd::kPackedBlockElems];
      for (uint64_t b0 = mb; b0 < me; b0 += bwd::kPackedBlockElems) {
        const uint32_t lanes =
            static_cast<uint32_t>(std::min(me - b0, bwd::kPackedBlockElems));
        bwd::GatherPacked(residual, ids.data() + b0, lanes, res_digits);
        for (uint32_t j = 0; j < lanes; ++j) {
          out[b0 + j] = approx_aligned->lower[b0 + j] +
                        static_cast<int64_t>(res_digits[j]);
        }
      }
    });
  } else {
    const bwd::PackedView approx = column.approximation();
    const bwd::DecompositionSpec& spec = column.spec();
    ParallelForBlocks(ctx, n, morsel, [&](uint64_t mb, uint64_t me, unsigned) {
      uint64_t res_digits[bwd::kPackedBlockElems];
      uint64_t approx_digits[bwd::kPackedBlockElems];
      for (uint64_t b0 = mb; b0 < me; b0 += bwd::kPackedBlockElems) {
        const uint32_t lanes =
            static_cast<uint32_t>(std::min(me - b0, bwd::kPackedBlockElems));
        bwd::GatherPacked(approx, ids.data() + b0, lanes, approx_digits);
        bwd::GatherPacked(residual, ids.data() + b0, lanes, res_digits);
        for (uint32_t j = 0; j < lanes; ++j) {
          out[b0 + j] = spec.Reassemble(approx_digits[j], res_digits[j]);
        }
      }
    });
  }
  return out;
}

StatusOr<ApproxValues> FkJoinApproximate(const bwd::BwdColumn& fk,
                                         const bwd::BwdColumn& dim_attribute,
                                         const Candidates& cands,
                                         device::Device* dev) {
  if (!fk.spec().fully_resident()) {
    return Status::Unsupported(
        "FK join requires a fully device-resident fk column (got " +
        fk.spec().ToString() + ")");
  }
  const bwd::DecompositionSpec& fk_spec = fk.spec();
  const bwd::DecompositionSpec& attr_spec = dim_attribute.spec();
  const bwd::PackedView fk_view = fk.approximation();
  const bwd::PackedView attr_view = dim_attribute.approximation();
  const uint64_t n = cands.size();

  ApproxValues out;
  out.error = attr_spec.error();
  out.lower.resize(n);
  int64_t* lower = out.lower.data();
  const cs::oid_t* ids = cands.ids.data();

  device::KernelSignature sig = ProjectSignature(attr_spec, "fkjoin");
  dev->Launch(
      sig,
      {.elements = n,
       .bytes_read = n * sizeof(cs::oid_t) +
                     device::PackedReadBytes(fk_spec.approximation_bits(), n,
                                             /*gather=*/true) +
                     device::PackedReadBytes(attr_spec.approximation_bits(), n,
                                             /*gather=*/true),
       .bytes_written = n * sizeof(int64_t),
       .ops = 2 * n},
      [&](uint64_t begin, uint64_t end) {
        uint64_t dim_oids[bwd::kPackedBlockElems];
        uint64_t attr_digits[bwd::kPackedBlockElems];
        for (uint64_t b0 = begin; b0 < end; b0 += bwd::kPackedBlockElems) {
          const uint32_t lanes = static_cast<uint32_t>(
              std::min(end - b0, bwd::kPackedBlockElems));
          // fk is fully resident: the gathered digit is the exact dim oid
          // (after prefix decompression); chain into a second gather.
          bwd::GatherPacked(fk_view, ids + b0, lanes, dim_oids);
          for (uint32_t j = 0; j < lanes; ++j) {
            dim_oids[j] =
                static_cast<uint64_t>(fk_spec.Reassemble(dim_oids[j], 0));
          }
          bwd::GatherPacked(attr_view, dim_oids, lanes, attr_digits);
          for (uint32_t j = 0; j < lanes; ++j) {
            lower[b0 + j] = attr_spec.LowerBound(attr_digits[j]);
          }
        }
      });
  return out;
}

StatusOr<std::vector<int64_t>> FkJoinRefine(const bwd::BwdColumn& fk,
                                            const bwd::BwdColumn& dim_attribute,
                                            const cs::OidVec& ids,
                                            const MorselContext& ctx) {
  if (!fk.spec().fully_resident()) {
    return Status::Unsupported("FK join requires a fully resident fk column");
  }
  const uint64_t n = ids.size();
  std::vector<int64_t> out(n);
  const bwd::PackedView fk_view = fk.approximation();
  const bwd::PackedView attr_view = dim_attribute.approximation();
  const bwd::PackedView attr_res = dim_attribute.residual().view();
  const uint64_t morsel =
      ctx.morsel_elems != 0
          ? ctx.morsel_elems
          : MorselElems(fk.spec().approximation_bits() +
                        dim_attribute.spec().value_bits + 64);
  ParallelForBlocks(ctx, n, morsel, [&](uint64_t mb, uint64_t me, unsigned) {
    uint64_t dim_oids[bwd::kPackedBlockElems];
    uint64_t attr_digits[bwd::kPackedBlockElems];
    uint64_t res_digits[bwd::kPackedBlockElems];
    for (uint64_t b0 = mb; b0 < me; b0 += bwd::kPackedBlockElems) {
      const uint32_t lanes =
          static_cast<uint32_t>(std::min(me - b0, bwd::kPackedBlockElems));
      bwd::GatherPacked(fk_view, ids.data() + b0, lanes, dim_oids);
      for (uint32_t j = 0; j < lanes; ++j) {
        dim_oids[j] =
            static_cast<uint64_t>(fk.spec().Reassemble(dim_oids[j], 0));
      }
      bwd::GatherPacked(attr_view, dim_oids, lanes, attr_digits);
      bwd::GatherPacked(attr_res, dim_oids, lanes, res_digits);
      for (uint32_t j = 0; j < lanes; ++j) {
        out[b0 + j] =
            dim_attribute.spec().Reassemble(attr_digits[j], res_digits[j]);
      }
    }
  });
  return out;
}

}  // namespace wastenot::core
