#include "core/theta_join.h"

#include <algorithm>

#include "util/bits.h"

namespace wastenot::core {

namespace {

/// Possible / certain tests on intervals for each theta condition.
struct IntervalTheta {
  ThetaOp op;
  int64_t band;

  bool Possible(const ValueBounds& a, const ValueBounds& b) const {
    switch (op) {
      case ThetaOp::kLess:
        return a.lo < b.hi;
      case ThetaOp::kLessEqual:
        return a.lo <= b.hi;
      case ThetaOp::kBandWithin: {
        // |a-b| <= band possible iff the difference interval meets [-band, band].
        const ValueBounds diff = a - b;
        return diff.Overlaps(-band, band);
      }
    }
    return false;
  }

  bool Certain(const ValueBounds& a, const ValueBounds& b) const {
    switch (op) {
      case ThetaOp::kLess:
        return a.hi < b.lo;
      case ThetaOp::kLessEqual:
        return a.hi <= b.lo;
      case ThetaOp::kBandWithin: {
        const ValueBounds diff = a - b;
        return diff.lo >= -band && diff.hi <= band;
      }
    }
    return false;
  }

  bool Exact(int64_t a, int64_t b) const {
    switch (op) {
      case ThetaOp::kLess:
        return a < b;
      case ThetaOp::kLessEqual:
        return a <= b;
      case ThetaOp::kBandWithin:
        return a - b >= -band && a - b <= band;
    }
    return false;
  }
};

}  // namespace

PairCandidates ThetaJoinApproximate(const bwd::BwdColumn& left,
                                    const bwd::BwdColumn& right, ThetaOp op,
                                    int64_t band, device::Device* dev) {
  const bwd::DecompositionSpec& lspec = left.spec();
  const bwd::DecompositionSpec& rspec = right.spec();
  const bwd::PackedView lview = left.approximation();
  const bwd::PackedView rview = right.approximation();
  const IntervalTheta theta{op, band};
  const uint64_t nl = lview.size();
  const uint64_t nr = rview.size();

  // Parallel over left chunks; each work item streams the whole right side
  // (the classic massively parallel nested loop).
  const uint64_t chunk_elems = 256;
  const uint64_t num_chunks = nl == 0 ? 0 : bits::CeilDiv(nl, chunk_elems);
  struct ChunkOut {
    cs::OidVec left_ids, right_ids;
    std::vector<uint8_t> certain;
    uint64_t num_certain = 0;
  };
  std::vector<ChunkOut> chunks(num_chunks);
  dev->Run(num_chunks, [&](uint64_t cb, uint64_t ce) {
    for (uint64_t c = cb; c < ce; ++c) {
      const uint64_t begin = c * chunk_elems;
      const uint64_t end = std::min(nl, begin + chunk_elems);
      ChunkOut& out = chunks[c];
      for (uint64_t i = begin; i < end; ++i) {
        const uint64_t ld = lview.Get(i);
        const ValueBounds a{lspec.LowerBound(ld), lspec.UpperBound(ld)};
        for (uint64_t j = 0; j < nr; ++j) {
          const uint64_t rd = rview.Get(j);
          const ValueBounds b{rspec.LowerBound(rd), rspec.UpperBound(rd)};
          if (theta.Possible(a, b)) {
            out.left_ids.push_back(static_cast<cs::oid_t>(i));
            out.right_ids.push_back(static_cast<cs::oid_t>(j));
            const bool certain = theta.Certain(a, b);
            out.certain.push_back(certain ? 1 : 0);
            out.num_certain += certain;
          }
        }
      }
    }
  });

  PairCandidates result;
  uint64_t total = 0;
  for (const auto& c : chunks) total += c.left_ids.size();
  result.left_ids.reserve(total);
  result.right_ids.reserve(total);
  result.certain.reserve(total);
  for (auto& c : chunks) {
    result.left_ids.insert(result.left_ids.end(), c.left_ids.begin(),
                           c.left_ids.end());
    result.right_ids.insert(result.right_ids.end(), c.right_ids.begin(),
                            c.right_ids.end());
    result.certain.insert(result.certain.end(), c.certain.begin(),
                          c.certain.end());
    result.num_certain += c.num_certain;
  }

  device::KernelSignature sig;
  sig.op = "thetajoin_approximate";
  sig.value_bits = lspec.value_bits;
  sig.packed_bits = lspec.approximation_bits();
  sig.extra = op == ThetaOp::kBandWithin ? "band" : "less";
  const uint64_t l_bytes =
      std::max<uint64_t>(bits::CeilDiv(lspec.approximation_bits(), 8), 1);
  const uint64_t r_bytes =
      std::max<uint64_t>(bits::CeilDiv(rspec.approximation_bits(), 8), 1);
  dev->ChargeKernel(
      sig, {.elements = nl,
            // Every left element streams the right side once; the right
            // side is read from device memory nl times (no cache modeled —
            // conservative).
            .bytes_read = nl * l_bytes + nl * nr * r_bytes,
            .bytes_written = total * 2 * sizeof(cs::oid_t),
            .ops = nl * nr});
  return result;
}

JoinedPairs ThetaJoinRefine(const bwd::BwdColumn& left,
                            const bwd::BwdColumn& right, ThetaOp op,
                            int64_t band, const PairCandidates& cands) {
  const IntervalTheta theta{op, band};
  JoinedPairs out;
  out.left_ids.reserve(cands.size());
  out.right_ids.reserve(cands.size());
  // Pair order is the approximation's permutation; the left side's
  // reconstruction is an invisible join on the persistent residual, the
  // right side a by-id fetch (the side whose order was not preserved).
  for (uint64_t i = 0; i < cands.size(); ++i) {
    if (cands.certain[i] ||
        theta.Exact(left.Reconstruct(cands.left_ids[i]),
                    right.Reconstruct(cands.right_ids[i]))) {
      out.left_ids.push_back(cands.left_ids[i]);
      out.right_ids.push_back(cands.right_ids[i]);
    }
  }
  return out;
}

JoinedPairs ThetaJoinExact(const cs::Column& left, const cs::Column& right,
                           ThetaOp op, int64_t band) {
  const IntervalTheta theta{op, band};
  JoinedPairs out;
  for (uint64_t i = 0; i < left.size(); ++i) {
    const int64_t a = left.Get(i);
    for (uint64_t j = 0; j < right.size(); ++j) {
      if (theta.Exact(a, right.Get(j))) {
        out.left_ids.push_back(static_cast<cs::oid_t>(i));
        out.right_ids.push_back(static_cast<cs::oid_t>(j));
      }
    }
  }
  return out;
}

}  // namespace wastenot::core
