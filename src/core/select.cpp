#include "core/select.h"

#include <algorithm>

#include "util/bits.h"

namespace wastenot::core {

using bwd::DecompositionSpec;

RelaxedPred RelaxPredicate(const DecompositionSpec& spec,
                           const cs::RangePred& pred) {
  RelaxedPred out;
  const uint64_t max_reb = bits::LowMask(spec.value_bits);
  const uint32_t res = spec.residual_bits;
  const int64_t domain_lo = spec.prefix_base;
  // Guarded 128-bit domain top avoids overflow for wide specs.
  const __int128 domain_hi =
      static_cast<__int128>(spec.prefix_base) + static_cast<__int128>(max_reb);

  if (pred.Empty() || pred.hi < domain_lo ||
      static_cast<__int128>(pred.lo) > domain_hi) {
    out.none = true;
    return out;
  }

  const uint64_t max_digit = max_reb >> res;
  // Candidate digit range: f(x) of §IV-B. '>= lo' relaxes to digits whose
  // interval can still contain lo; '<= hi' symmetrically.
  out.lo_digit =
      pred.lo <= domain_lo ? 0 : (spec.Rebase(pred.lo) >> res);
  out.hi_digit = static_cast<__int128>(pred.hi) >= domain_hi
                     ? max_digit
                     : (spec.Rebase(pred.hi) >> res);

  // Certainty range: digits whose whole interval lies inside [lo, hi].
  const uint64_t step = uint64_t{1} << std::min(res, 63u);
  uint64_t certain_lo;
  if (pred.lo <= domain_lo) {
    certain_lo = 0;
  } else {
    certain_lo = bits::CeilDiv(spec.Rebase(pred.lo), step);
  }
  uint64_t certain_hi;
  bool certain_empty = false;
  if (static_cast<__int128>(pred.hi) >= domain_hi) {
    certain_hi = max_digit;
  } else {
    const uint64_t reb_hi = spec.Rebase(pred.hi);
    const uint64_t err = spec.error();
    if (reb_hi >= err) {
      certain_hi = (reb_hi - err) >> res;
    } else {
      certain_empty = true;
      certain_hi = 0;
    }
  }
  if (certain_empty || certain_lo > certain_hi) {
    out.certain_lo = 1;
    out.certain_hi = 0;
  } else {
    out.certain_lo = certain_lo;
    out.certain_hi = certain_hi;
  }
  return out;
}

namespace {

/// Shared emit-and-concatenate machinery for the two selection kernels.
struct ChunkOut {
  cs::OidVec ids;
  std::vector<int64_t> lower;
  std::vector<uint8_t> certain;
  cs::OidVec positions;
  uint64_t num_certain = 0;
};

ApproxSelection Concatenate(std::vector<ChunkOut> chunks, bool with_positions,
                            uint64_t error) {
  ApproxSelection out;
  uint64_t total = 0;
  for (const auto& c : chunks) total += c.ids.size();
  out.cands.ids.reserve(total);
  out.values.lower.reserve(total);
  out.certain.reserve(total);
  if (with_positions) out.kept_positions.reserve(total);
  for (auto& c : chunks) {
    out.cands.ids.insert(out.cands.ids.end(), c.ids.begin(), c.ids.end());
    out.values.lower.insert(out.values.lower.end(), c.lower.begin(),
                            c.lower.end());
    out.certain.insert(out.certain.end(), c.certain.begin(), c.certain.end());
    if (with_positions) {
      out.kept_positions.insert(out.kept_positions.end(), c.positions.begin(),
                                c.positions.end());
    }
    out.num_certain += c.num_certain;
  }
  out.values.error = error;
  return out;
}

device::KernelSignature SelectSignature(const DecompositionSpec& spec,
                                        const char* variant) {
  device::KernelSignature sig;
  sig.op = "uselect_approximate";
  sig.value_bits = spec.value_bits;
  sig.packed_bits = spec.approximation_bits();
  sig.prefix_base = spec.prefix_base;
  sig.extra = variant;
  return sig;
}

}  // namespace

ApproxSelection SelectApproximate(const bwd::BwdColumn& column,
                                  const cs::RangePred& pred,
                                  device::Device* dev) {
  const DecompositionSpec& spec = column.spec();
  const RelaxedPred relaxed = RelaxPredicate(spec, pred);
  const bwd::PackedView view = column.approximation();
  const uint64_t n = view.size();

  if (relaxed.none) {
    dev->ChargeKernel(SelectSignature(spec, "range/full"),
                      {.elements = 0, .bytes_read = 0, .bytes_written = 0});
    ApproxSelection empty;
    empty.values.error = spec.error();
    return empty;
  }

  // One chunk per 64-element-aligned slice; concatenation in chunk order
  // keeps the output ascending (sorted) for a full scan.
  const uint64_t chunk_elems = 1u << 16;
  const uint64_t num_chunks = n == 0 ? 0 : bits::CeilDiv(n, chunk_elems);
  std::vector<ChunkOut> chunks(num_chunks);
  dev->Run(num_chunks, [&](uint64_t cb, uint64_t ce) {
    for (uint64_t c = cb; c < ce; ++c) {
      const uint64_t begin = c * chunk_elems;
      const uint64_t end = std::min(n, begin + chunk_elems);
      ChunkOut& out = chunks[c];
      for (uint64_t i = begin; i < end; ++i) {
        const uint64_t digit = view.Get(i);
        if (relaxed.Matches(digit)) {
          out.ids.push_back(static_cast<cs::oid_t>(i));
          out.lower.push_back(spec.LowerBound(digit));
          const bool certain = relaxed.Certain(digit);
          out.certain.push_back(certain ? 1 : 0);
          out.num_certain += certain;
        }
      }
    }
  });

  ApproxSelection result = Concatenate(std::move(chunks), false, spec.error());
  result.cands.sorted = true;

  const uint64_t out_bytes =
      result.cands.size() *
      (sizeof(cs::oid_t) + bits::CeilDiv(spec.approximation_bits(), 8) + 1);
  dev->ChargeKernel(SelectSignature(spec, "range/full"),
                    {.elements = n,
                     .bytes_read = view.byte_size(),
                     .bytes_written = out_bytes,
                     .ops = 2 * n});
  return result;
}

ApproxSelection SelectApproximateOn(const bwd::BwdColumn& column,
                                    const cs::RangePred& pred,
                                    const Candidates& in,
                                    device::Device* dev) {
  const DecompositionSpec& spec = column.spec();
  const RelaxedPred relaxed = RelaxPredicate(spec, pred);
  const bwd::PackedView view = column.approximation();
  const uint64_t n = in.size();

  if (relaxed.none) {
    dev->ChargeKernel(SelectSignature(spec, "range/cand"),
                      {.elements = 0, .bytes_read = 0, .bytes_written = 0});
    ApproxSelection empty;
    empty.values.error = spec.error();
    return empty;
  }

  const uint64_t chunk_elems = 1u << 16;
  const uint64_t num_chunks = n == 0 ? 0 : bits::CeilDiv(n, chunk_elems);
  std::vector<ChunkOut> chunks(num_chunks);
  dev->Run(num_chunks, [&](uint64_t cb, uint64_t ce) {
    for (uint64_t c = cb; c < ce; ++c) {
      const uint64_t begin = c * chunk_elems;
      const uint64_t end = std::min(n, begin + chunk_elems);
      ChunkOut& out = chunks[c];
      for (uint64_t i = begin; i < end; ++i) {
        const cs::oid_t id = in.ids[i];
        const uint64_t digit = view.Get(id);
        if (relaxed.Matches(digit)) {
          out.ids.push_back(id);
          out.positions.push_back(static_cast<cs::oid_t>(i));
          out.lower.push_back(spec.LowerBound(digit));
          const bool certain = relaxed.Certain(digit);
          out.certain.push_back(certain ? 1 : 0);
          out.num_certain += certain;
        }
      }
    }
  });

  ApproxSelection result = Concatenate(std::move(chunks), true, spec.error());
  result.cands.sorted = in.sorted;  // gather preserves the input permutation

  const uint64_t gathered_bytes =
      n * std::max<uint64_t>(bits::CeilDiv(spec.approximation_bits(), 8), 1) +
      n * sizeof(cs::oid_t);
  const uint64_t out_bytes =
      result.cands.size() *
      (sizeof(cs::oid_t) + bits::CeilDiv(spec.approximation_bits(), 8) + 1);
  dev->ChargeKernel(SelectSignature(spec, "range/cand"),
                    {.elements = n,
                     .bytes_read = gathered_bytes,
                     .bytes_written = out_bytes,
                     .ops = 2 * n});
  return result;
}

RefinedSelection SelectRefine(const Candidates& cands,
                              std::span<const PredicateRefinement> conjuncts,
                              bool keep_values) {
  RefinedSelection out;
  const uint64_t n = cands.size();
  out.ids.reserve(n);
  out.positions.reserve(n);
  if (keep_values) {
    out.exact_values.resize(conjuncts.size());
    for (auto& v : out.exact_values) v.reserve(n);
  }
  std::vector<int64_t> row_values(conjuncts.size());

  // Algorithm 2, fused over every conjunct: reconstruct by bitwise
  // concatenation (lower-bound value + residual digit) and re-check the
  // precise predicates. The residual access is an invisible join (the
  // persistent residual is dense); the candidate order is preserved.
  for (uint64_t i = 0; i < n; ++i) {
    const cs::oid_t id = cands.ids[i];
    bool pass = true;
    for (uint64_t c = 0; c < conjuncts.size(); ++c) {
      const PredicateRefinement& conj = conjuncts[c];
      const int64_t lower = conj.approx != nullptr
                                ? conj.approx->lower[i]
                                : conj.column->ApproxLowerBound(id);
      const int64_t exact =
          lower + static_cast<int64_t>(conj.column->residual().Get(id));
      row_values[c] = exact;
      if (!conj.pred.Contains(exact)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      out.ids.push_back(id);
      out.positions.push_back(static_cast<cs::oid_t>(i));
      if (keep_values) {
        for (uint64_t c = 0; c < conjuncts.size(); ++c) {
          out.exact_values[c].push_back(row_values[c]);
        }
      }
    }
  }
  return out;
}

}  // namespace wastenot::core
