#include "core/select.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "bwd/packed_codec.h"
#include "util/bits.h"

namespace wastenot::core {

using bwd::DecompositionSpec;

RelaxedPred RelaxPredicate(const DecompositionSpec& spec,
                           const cs::RangePred& pred) {
  RelaxedPred out;
  const uint64_t max_reb = bits::LowMask(spec.value_bits);
  const uint32_t res = spec.residual_bits;
  const int64_t domain_lo = spec.prefix_base;
  // Guarded 128-bit domain top avoids overflow for wide specs.
  const __int128 domain_hi =
      static_cast<__int128>(spec.prefix_base) + static_cast<__int128>(max_reb);

  if (pred.Empty() || pred.hi < domain_lo ||
      static_cast<__int128>(pred.lo) > domain_hi) {
    out.none = true;
    return out;
  }

  const uint64_t max_digit = max_reb >> res;
  // Candidate digit range: f(x) of §IV-B. '>= lo' relaxes to digits whose
  // interval can still contain lo; '<= hi' symmetrically.
  out.lo_digit =
      pred.lo <= domain_lo ? 0 : (spec.Rebase(pred.lo) >> res);
  out.hi_digit = static_cast<__int128>(pred.hi) >= domain_hi
                     ? max_digit
                     : (spec.Rebase(pred.hi) >> res);

  // Certainty range: digits whose whole interval lies inside [lo, hi].
  const uint64_t step = uint64_t{1} << std::min(res, 63u);
  uint64_t certain_lo;
  if (pred.lo <= domain_lo) {
    certain_lo = 0;
  } else {
    certain_lo = bits::CeilDiv(spec.Rebase(pred.lo), step);
  }
  uint64_t certain_hi;
  bool certain_empty = false;
  if (static_cast<__int128>(pred.hi) >= domain_hi) {
    certain_hi = max_digit;
  } else {
    const uint64_t reb_hi = spec.Rebase(pred.hi);
    const uint64_t err = spec.error();
    if (reb_hi >= err) {
      certain_hi = (reb_hi - err) >> res;
    } else {
      certain_empty = true;
      certain_hi = 0;
    }
  }
  if (certain_empty || certain_lo > certain_hi) {
    out.certain_lo = 1;
    out.certain_hi = 0;
  } else {
    out.certain_lo = certain_lo;
    out.certain_hi = certain_hi;
  }
  return out;
}

namespace {

/// Shared emit-and-concatenate machinery for the two selection kernels.
struct ChunkOut {
  cs::OidVec ids;
  std::vector<int64_t> lower;
  std::vector<uint8_t> certain;
  cs::OidVec positions;
  uint64_t num_certain = 0;
};

ApproxSelection Concatenate(std::vector<ChunkOut> chunks, bool with_positions,
                            uint64_t error) {
  ApproxSelection out;
  uint64_t total = 0;
  for (const auto& c : chunks) total += c.ids.size();
  out.cands.ids.reserve(total);
  out.values.lower.reserve(total);
  out.certain.reserve(total);
  if (with_positions) out.kept_positions.reserve(total);
  for (auto& c : chunks) {
    out.cands.ids.insert(out.cands.ids.end(), c.ids.begin(), c.ids.end());
    out.values.lower.insert(out.values.lower.end(), c.lower.begin(),
                            c.lower.end());
    out.certain.insert(out.certain.end(), c.certain.begin(), c.certain.end());
    if (with_positions) {
      out.kept_positions.insert(out.kept_positions.end(), c.positions.begin(),
                                c.positions.end());
    }
    out.num_certain += c.num_certain;
  }
  out.values.error = error;
  return out;
}

device::KernelSignature SelectSignature(const DecompositionSpec& spec,
                                        const char* variant) {
  device::KernelSignature sig;
  sig.op = "uselect_approximate";
  sig.value_bits = spec.value_bits;
  sig.packed_bits = spec.approximation_bits();
  sig.prefix_base = spec.prefix_base;
  sig.extra = variant;
  return sig;
}

/// Packs `n` 0/1 flag bytes into a bitmask, eight at a time: for 0/1
/// bytes, chunk * 0x0102040810204080 gathers byte j's bit into bit 56+j
/// with no carries (all partial-product bit positions are distinct).
inline uint64_t PackFlagBytes(const uint8_t* flags, uint32_t n) {
  uint64_t m = 0;
  uint32_t k = 0;
  for (; k + 8 <= n; k += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, flags + k, sizeof(chunk));
    m |= ((chunk * 0x0102040810204080ULL) >> 56) << k;
  }
  for (; k < n; ++k) {
    m |= static_cast<uint64_t>(flags[k] & 1) << k;
  }
  return m;
}

/// Bitmask of lanes whose digit lies in [lo, hi] — branch-free via
/// unsigned-wrap containment (requires lo <= hi, which RelaxPredicate
/// guarantees whenever the predicate is not `none`). Flags are produced
/// as independent bytes (no loop-carried OR chain) and bit-packed by
/// multiplication.
inline uint64_t DigitRangeMask(const uint64_t* digits, uint32_t n, uint64_t lo,
                               uint64_t hi) {
  const uint64_t span = hi - lo;
  uint8_t flags[64];
  for (uint32_t j = 0; j < n; ++j) {
    flags[j] = static_cast<uint8_t>(digits[j] - lo <= span);
  }
  return PackFlagBytes(flags, n);
}

/// Block-decoded two-pass selection over elements [begin, end) of `view`.
/// `begin` must be a multiple of 64 (the chunk grid guarantees it).
void SelectChunkFull(const bwd::PackedView& view, const DecompositionSpec& spec,
                     const RelaxedPred& relaxed, uint64_t begin, uint64_t end,
                     ChunkOut* out) {
  const uint64_t* words = view.words();
  const uint32_t width = view.width();
  const uint64_t n = end - begin;
  const uint64_t num_blocks = bits::CeilDiv(n, bwd::kPackedBlockElems);
  const bool has_certain = relaxed.certain_lo <= relaxed.certain_hi;
  const uint64_t certain_span = relaxed.certain_hi - relaxed.certain_lo;

  // Pass 1 (count): fused decode-and-compare straight off the packed
  // words into per-block match bitmasks — the digits are never
  // materialized. Certainty is deferred to pass 2: it only matters for
  // matching lanes, which are typically a small fraction.
  const uint64_t match_span = relaxed.hi_digit - relaxed.lo_digit;
  std::vector<uint64_t> match(num_blocks);
  uint64_t num_match = 0;
  uint64_t digits[bwd::kPackedBlockElems];
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const uint64_t e0 = begin + b * bwd::kPackedBlockElems;
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(end - e0, bwd::kPackedBlockElems));
    const uint64_t block = e0 / bwd::kPackedBlockElems;
    const uint64_t m =
        lanes == bwd::kPackedBlockElems
            ? bwd::MatchBlock(words, width, block, relaxed.lo_digit,
                              match_span)
            : bwd::MatchBlockPartial(words, width, block, lanes,
                                     relaxed.lo_digit, match_span);
    match[b] = m;
    num_match += static_cast<uint64_t>(std::popcount(m));
  }

  // Pass 2 (fill): exact-size the chunk output, then revisit only blocks
  // that matched — the packed payload is still cache-hot — and emit by
  // mask expansion/compression (SIMD compress-store under the hood), then
  // a dense branch-free loop over the survivors. No per-element branches,
  // no reallocation.
  out->ids.resize(num_match);
  out->lower.resize(num_match);
  out->certain.resize(num_match);
  uint64_t num_certain = 0;
  uint64_t pos = 0;
  uint64_t cdigits[bwd::kPackedBlockElems];
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const uint64_t m = match[b];
    if (m == 0) continue;
    const uint64_t e0 = begin + b * bwd::kPackedBlockElems;
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(end - e0, bwd::kPackedBlockElems));
    bwd::UnpackRange(words, width, e0, lanes, digits);
    const uint32_t cnt =
        bwd::ExpandMask(m, static_cast<uint32_t>(e0), out->ids.data() + pos);
    bwd::CompressLanes(m, digits, cdigits);
    for (uint32_t k = 0; k < cnt; ++k) {
      const uint64_t digit = cdigits[k];
      const uint8_t cert = static_cast<uint8_t>(
          has_certain && digit - relaxed.certain_lo <= certain_span);
      out->lower[pos + k] = spec.LowerBound(digit);
      out->certain[pos + k] = cert;
      num_certain += cert;
    }
    pos += cnt;
  }
  out->num_certain = num_certain;
}

/// Block two-pass selection over the gathered digits of candidates
/// [begin, end) of `in`. The gather lands in a chunk-local scratch so pass
/// 2 rereads sequentially instead of re-gathering randomly.
void SelectChunkCandidates(const bwd::PackedView& view,
                           const DecompositionSpec& spec,
                           const RelaxedPred& relaxed, const Candidates& in,
                           uint64_t begin, uint64_t end, ChunkOut* out) {
  const uint64_t n = end - begin;
  const uint64_t num_blocks = bits::CeilDiv(n, bwd::kPackedBlockElems);
  const bool has_certain = relaxed.certain_lo <= relaxed.certain_hi;
  const uint64_t certain_span = relaxed.certain_hi - relaxed.certain_lo;
  const cs::oid_t* ids = in.ids.data() + begin;

  std::vector<uint64_t> digits(n);
  bwd::GatherPacked(view, ids, n, digits.data());

  std::vector<uint64_t> match(num_blocks);
  uint64_t num_match = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const uint64_t j0 = b * bwd::kPackedBlockElems;
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(n - j0, bwd::kPackedBlockElems));
    const uint64_t m = DigitRangeMask(digits.data() + j0, lanes,
                                      relaxed.lo_digit, relaxed.hi_digit);
    match[b] = m;
    num_match += static_cast<uint64_t>(std::popcount(m));
  }

  out->ids.resize(num_match);
  out->lower.resize(num_match);
  out->certain.resize(num_match);
  out->positions.resize(num_match);
  uint64_t num_certain = 0;
  uint64_t pos = 0;
  uint64_t cdigits[bwd::kPackedBlockElems];
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const uint64_t m = match[b];
    if (m == 0) continue;
    const uint64_t j0 = b * bwd::kPackedBlockElems;
    const uint32_t cnt = bwd::CompressLanes(m, ids + j0, out->ids.data() + pos);
    bwd::ExpandMask(m, static_cast<uint32_t>(begin + j0),
                    out->positions.data() + pos);
    bwd::CompressLanes(m, digits.data() + j0, cdigits);
    for (uint32_t k = 0; k < cnt; ++k) {
      const uint64_t digit = cdigits[k];
      const uint8_t cert = static_cast<uint8_t>(
          has_certain && digit - relaxed.certain_lo <= certain_span);
      out->lower[pos + k] = spec.LowerBound(digit);
      out->certain[pos + k] = cert;
      num_certain += cert;
    }
    pos += cnt;
  }
  out->num_certain = num_certain;
}

}  // namespace

ApproxSelection SelectApproximate(const bwd::BwdColumn& column,
                                  const cs::RangePred& pred,
                                  device::Device* dev) {
  const DecompositionSpec& spec = column.spec();
  const RelaxedPred relaxed = RelaxPredicate(spec, pred);
  const bwd::PackedView view = column.approximation();
  const uint64_t n = view.size();

  if (relaxed.none) {
    dev->ChargeKernel(SelectSignature(spec, "range/full"),
                      {.elements = 0, .bytes_read = 0, .bytes_written = 0});
    ApproxSelection empty;
    empty.values.error = spec.error();
    return empty;
  }

  // One chunk per 64-element-aligned slice; concatenation in chunk order
  // keeps the output ascending (sorted) for a full scan.
  const uint64_t chunk_elems = 1u << 16;
  const uint64_t num_chunks = n == 0 ? 0 : bits::CeilDiv(n, chunk_elems);
  std::vector<ChunkOut> chunks(num_chunks);
  dev->Run(num_chunks, [&](uint64_t cb, uint64_t ce) {
    for (uint64_t c = cb; c < ce; ++c) {
      const uint64_t begin = c * chunk_elems;
      const uint64_t end = std::min(n, begin + chunk_elems);
      SelectChunkFull(view, spec, relaxed, begin, end, &chunks[c]);
    }
  });

  ApproxSelection result = Concatenate(std::move(chunks), false, spec.error());
  result.cands.sorted = true;

  const uint64_t out_bytes =
      result.cands.size() *
      (sizeof(cs::oid_t) + bits::CeilDiv(spec.approximation_bits(), 8) + 1);
  dev->ChargeKernel(
      SelectSignature(spec, "range/full"),
      {.elements = n,
       .bytes_read = device::PackedReadBytes(spec.approximation_bits(), n,
                                             /*gather=*/false),
       .bytes_written = out_bytes,
       .ops = 2 * n});
  return result;
}

ApproxSelection SelectApproximateOn(const bwd::BwdColumn& column,
                                    const cs::RangePred& pred,
                                    const Candidates& in,
                                    device::Device* dev) {
  const DecompositionSpec& spec = column.spec();
  const RelaxedPred relaxed = RelaxPredicate(spec, pred);
  const bwd::PackedView view = column.approximation();
  const uint64_t n = in.size();

  if (relaxed.none) {
    dev->ChargeKernel(SelectSignature(spec, "range/cand"),
                      {.elements = 0, .bytes_read = 0, .bytes_written = 0});
    ApproxSelection empty;
    empty.values.error = spec.error();
    return empty;
  }

  const uint64_t chunk_elems = 1u << 16;
  const uint64_t num_chunks = n == 0 ? 0 : bits::CeilDiv(n, chunk_elems);
  std::vector<ChunkOut> chunks(num_chunks);
  dev->Run(num_chunks, [&](uint64_t cb, uint64_t ce) {
    for (uint64_t c = cb; c < ce; ++c) {
      const uint64_t begin = c * chunk_elems;
      const uint64_t end = std::min(n, begin + chunk_elems);
      SelectChunkCandidates(view, spec, relaxed, in, begin, end, &chunks[c]);
    }
  });

  ApproxSelection result = Concatenate(std::move(chunks), true, spec.error());
  result.cands.sorted = in.sorted;  // gather preserves the input permutation

  const uint64_t gathered_bytes =
      device::PackedReadBytes(spec.approximation_bits(), n, /*gather=*/true) +
      n * sizeof(cs::oid_t);
  const uint64_t out_bytes =
      result.cands.size() *
      (sizeof(cs::oid_t) + bits::CeilDiv(spec.approximation_bits(), 8) + 1);
  dev->ChargeKernel(SelectSignature(spec, "range/cand"),
                    {.elements = n,
                     .bytes_read = gathered_bytes,
                     .bytes_written = out_bytes,
                     .ops = 2 * n});
  return result;
}

namespace {

/// One morsel's worth of refined output (the fragment shape the prefix-sum
/// merge concatenates).
struct RefineFragment {
  cs::OidVec ids;
  cs::OidVec positions;
  std::vector<std::vector<int64_t>> exact_values;
};

/// Algorithm 2, fused over every conjunct and blocked over candidates
/// [begin, end) — `begin` is a multiple of 64 (the morsel grid guarantees
/// it), so the inner 64-candidate blocks coincide with the serial path's.
/// Per block, gather each conjunct's residual digits in one
/// width-specialized call (the invisible join — the persistent residual is
/// dense), reconstruct by bitwise concatenation, and AND the branch-free
/// precise-predicate masks. Lanes die block-wide, so later conjuncts skip
/// blocks that already failed; survivors are emitted by bitmask iteration,
/// preserving candidate order.
void RefineMorsel(const Candidates& cands,
                  std::span<const PredicateRefinement> conjuncts,
                  bool keep_values, uint64_t begin, uint64_t end,
                  RefineFragment* out) {
  const uint64_t num_conjuncts = conjuncts.size();
  if (keep_values) out->exact_values.resize(num_conjuncts);
  std::vector<int64_t> exact(num_conjuncts * bwd::kPackedBlockElems);
  uint64_t res_digits[bwd::kPackedBlockElems];
  uint64_t approx_digits[bwd::kPackedBlockElems];

  for (uint64_t b0 = begin; b0 < end; b0 += bwd::kPackedBlockElems) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min(end - b0, bwd::kPackedBlockElems));
    const cs::oid_t* ids = cands.ids.data() + b0;
    uint64_t pass = bits::LowMask(lanes);
    for (uint64_t c = 0; c < num_conjuncts && pass != 0; ++c) {
      const PredicateRefinement& conj = conjuncts[c];
      bwd::GatherPacked(conj.column->residual().view(), ids, lanes,
                        res_digits);
      int64_t* ex = exact.data() + c * bwd::kPackedBlockElems;
      if (conj.approx != nullptr) {
        const int64_t* lower = conj.approx->lower.data() + b0;
        for (uint32_t j = 0; j < lanes; ++j) {
          ex[j] = lower[j] + static_cast<int64_t>(res_digits[j]);
        }
      } else {
        bwd::GatherPacked(conj.column->approximation(), ids, lanes,
                          approx_digits);
        const DecompositionSpec& spec = conj.column->spec();
        for (uint32_t j = 0; j < lanes; ++j) {
          ex[j] = spec.LowerBound(approx_digits[j]) +
                  static_cast<int64_t>(res_digits[j]);
        }
      }
      const int64_t lo = conj.pred.lo;
      const int64_t hi = conj.pred.hi;
      uint64_t ok = 0;
      for (uint32_t j = 0; j < lanes; ++j) {
        ok |= static_cast<uint64_t>((ex[j] >= lo) & (ex[j] <= hi)) << j;
      }
      pass &= ok;
    }
    if (pass == 0) continue;
    const uint32_t cnt = static_cast<uint32_t>(std::popcount(pass));
    const size_t old = out->ids.size();
    out->ids.resize(old + cnt);
    out->positions.resize(old + cnt);
    bwd::CompressLanes(pass, ids, out->ids.data() + old);
    bwd::ExpandMask(pass, static_cast<uint32_t>(b0),
                    out->positions.data() + old);
    if (keep_values) {
      for (uint64_t c = 0; c < num_conjuncts; ++c) {
        auto& vals = out->exact_values[c];
        vals.resize(old + cnt);
        // int64 payload compressed through the u64 overload (same bits).
        bwd::CompressLanes(
            pass,
            reinterpret_cast<const uint64_t*>(exact.data() +
                                              c * bwd::kPackedBlockElems),
            reinterpret_cast<uint64_t*>(vals.data() + old));
      }
    }
  }
}

}  // namespace

RefinedSelection SelectRefine(const Candidates& cands,
                              std::span<const PredicateRefinement> conjuncts,
                              bool keep_values, const MorselContext& ctx) {
  RefinedSelection out;
  const uint64_t n = cands.size();
  const uint64_t num_conjuncts = conjuncts.size();
  if (keep_values) out.exact_values.resize(num_conjuncts);
  if (n == 0) return out;

  // Morsel size: ~256 KiB of gathered payload. Per candidate the fused
  // loop touches each conjunct's residual digit plus either the shipped
  // 64-bit lower bound or the approximation digit.
  uint64_t bits_per_cand = 8 * sizeof(cs::oid_t);
  for (const PredicateRefinement& conj : conjuncts) {
    bits_per_cand += conj.column->spec().residual_bits + 64;
  }
  const uint64_t morsel = AlignMorsel(
      ctx.morsel_elems != 0 ? ctx.morsel_elems : MorselElems(bits_per_cand));
  const uint64_t num_morsels = bits::CeilDiv(n, morsel);

  // Pass 1: refine each morsel independently into its own fragment — the
  // same count-then-fill shape as the selection scan, lifted to morsel
  // granularity.
  std::vector<RefineFragment> fragments(num_morsels);
  ParallelForBlocks(ctx, n, morsel, [&](uint64_t b, uint64_t e, unsigned) {
    RefineMorsel(cands, conjuncts, keep_values, b, e, &fragments[b / morsel]);
  });

  // Prefix-sum the fragment sizes into exact output offsets, then fill in
  // parallel: concatenation in morsel order preserves candidate order, so
  // the result is bit-identical to the serial pass.
  std::vector<uint64_t> offsets(num_morsels + 1, 0);
  for (uint64_t m = 0; m < num_morsels; ++m) {
    offsets[m + 1] = offsets[m] + fragments[m].ids.size();
  }
  const uint64_t total = offsets[num_morsels];
  out.ids.resize(total);
  out.positions.resize(total);
  for (auto& v : out.exact_values) v.resize(total);
  ParallelForItems(ctx, num_morsels, [&](uint64_t m, unsigned) {
    const RefineFragment& f = fragments[m];
    std::copy(f.ids.begin(), f.ids.end(), out.ids.begin() + offsets[m]);
    std::copy(f.positions.begin(), f.positions.end(),
              out.positions.begin() + offsets[m]);
    for (uint64_t c = 0; c < f.exact_values.size(); ++c) {
      std::copy(f.exact_values[c].begin(), f.exact_values[c].end(),
                out.exact_values[c].begin() + offsets[m]);
    }
  });
  return out;
}

}  // namespace wastenot::core
