#include "core/arithmetic.h"

#include <cassert>

namespace wastenot::core {

namespace {

/// Common launch wrapper for elementwise interval kernels.
BoundedValues Elementwise(const char* op, uint64_t n, uint64_t input_arrays,
                          device::Device* dev,
                          const std::function<void(uint64_t, uint64_t,
                                                   BoundedValues&)>& body) {
  BoundedValues out;
  out.lo.resize(n);
  out.hi.resize(n);
  device::KernelSignature sig;
  sig.op = op;
  sig.extra = "bounded";
  dev->Launch(sig,
              {.elements = n,
               .bytes_read = n * input_arrays * 2 * sizeof(int64_t),
               .bytes_written = n * 2 * sizeof(int64_t),
               .ops = 4 * n},
              [&](uint64_t begin, uint64_t end) { body(begin, end, out); });
  return out;
}

}  // namespace

BoundedValues AddApproximate(const BoundedValues& a, const BoundedValues& b,
                             device::Device* dev) {
  assert(a.size() == b.size());
  return Elementwise("add_approximate", a.size(), 2, dev,
                     [&](uint64_t begin, uint64_t end, BoundedValues& out) {
                       for (uint64_t i = begin; i < end; ++i) {
                         out.lo[i] = a.lo[i] + b.lo[i];
                         out.hi[i] = a.hi[i] + b.hi[i];
                       }
                     });
}

BoundedValues SubApproximate(const BoundedValues& a, const BoundedValues& b,
                             device::Device* dev) {
  assert(a.size() == b.size());
  return Elementwise("sub_approximate", a.size(), 2, dev,
                     [&](uint64_t begin, uint64_t end, BoundedValues& out) {
                       for (uint64_t i = begin; i < end; ++i) {
                         out.lo[i] = a.lo[i] - b.hi[i];
                         out.hi[i] = a.hi[i] - b.lo[i];
                       }
                     });
}

BoundedValues MulApproximate(const BoundedValues& a, const BoundedValues& b,
                             device::Device* dev) {
  assert(a.size() == b.size());
  return Elementwise(
      "mul_approximate", a.size(), 2, dev,
      [&](uint64_t begin, uint64_t end, BoundedValues& out) {
        for (uint64_t i = begin; i < end; ++i) {
          const ValueBounds r = a.At(i) * b.At(i);
          out.lo[i] = r.lo;
          out.hi[i] = r.hi;
        }
      });
}

BoundedValues AffineApproximate(const BoundedValues& a, int64_t k, int sign,
                                device::Device* dev) {
  return Elementwise(
      "affine_approximate", a.size(), 1, dev,
      [&](uint64_t begin, uint64_t end, BoundedValues& out) {
        if (sign >= 0) {
          for (uint64_t i = begin; i < end; ++i) {
            out.lo[i] = k + a.lo[i];
            out.hi[i] = k + a.hi[i];
          }
        } else {
          for (uint64_t i = begin; i < end; ++i) {
            out.lo[i] = k - a.hi[i];
            out.hi[i] = k - a.lo[i];
          }
        }
      });
}

BoundedValues DivConstApproximate(const BoundedValues& a, int64_t k,
                                  device::Device* dev) {
  assert(k != 0);
  return Elementwise(
      "div_approximate", a.size(), 1, dev,
      [&](uint64_t begin, uint64_t end, BoundedValues& out) {
        for (uint64_t i = begin; i < end; ++i) {
          const ValueBounds r = a.At(i).DivideBy(k);
          out.lo[i] = r.lo;
          out.hi[i] = r.hi;
        }
      });
}

BoundedValues SqrtApproximate(const BoundedValues& a, device::Device* dev) {
  return Elementwise(
      "sqrt_approximate", a.size(), 1, dev,
      [&](uint64_t begin, uint64_t end, BoundedValues& out) {
        for (uint64_t i = begin; i < end; ++i) {
          const ValueBounds r = a.At(i).Sqrt();
          out.lo[i] = r.lo;
          out.hi[i] = r.hi;
        }
      });
}

BoundedValues MulIndicatorApproximate(const BoundedValues& a,
                                      const BoundedValues& indicator,
                                      device::Device* dev) {
  assert(a.size() == indicator.size());
  return MulApproximate(a, indicator, dev);
}

std::vector<int64_t> MulExact(const std::vector<int64_t>& a,
                              const std::vector<int64_t>& b) {
  assert(a.size() == b.size());
  std::vector<int64_t> out(a.size());
  for (uint64_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

std::vector<int64_t> AffineExact(const std::vector<int64_t>& a, int64_t k,
                                 int sign) {
  std::vector<int64_t> out(a.size());
  if (sign >= 0) {
    for (uint64_t i = 0; i < a.size(); ++i) out[i] = k + a[i];
  } else {
    for (uint64_t i = 0; i < a.size(); ++i) out[i] = k - a[i];
  }
  return out;
}

}  // namespace wastenot::core
