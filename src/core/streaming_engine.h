// The "GPU streaming" engine — the state-of-the-art comparison point of
// paper §VI-A: a system that ships raw input columns to the device on
// demand (caching them LRU), processes them there, and ships results back.
//
// The paper could not find a mature streaming GPU DBMS to measure and
// reports the hypothetical minimum (the PCI-E push) instead. This engine
// makes the comparison executable: results are computed exactly (by the
// bulk operators) while the device/bus clocks are charged what a streaming
// system would pay — full-width column transfers on every cache miss and
// raw-width kernel scans. Its defining failure mode is reproduced: once
// the hot set exceeds device memory, LRU thrashing re-transfers every
// input on every query (the Fig 9 worst case).

#ifndef WASTENOT_CORE_STREAMING_ENGINE_H_
#define WASTENOT_CORE_STREAMING_ENGINE_H_

#include "columnstore/database.h"
#include "core/ar_engine.h"
#include "core/query.h"
#include "device/residency_cache.h"
#include "util/status.h"

namespace wastenot::storage {
class DeltaBatch;  // storage/delta_store.h
}

namespace wastenot::core {

/// Outcome of a streaming execution.
struct StreamingExecution {
  QueryResult result;           ///< exact, canonical order
  ExecutionBreakdown breakdown; ///< device kernels + PCI transfers
  uint64_t bytes_transferred = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// Executes `query` in streaming mode: inputs are pinned into `cache`
/// (uploading on miss), kernels are charged at raw column width, the
/// result is exact. The cache persists across calls — repeated queries on
/// a device-resident hot set become transfer-free, oversized hot sets
/// thrash. Thread-safe: concurrent streams may share one device and one
/// cache (the cache serializes pins internally; clock attribution is
/// per query via SimClock::QueryScope). `delta` (optional) unions
/// unabsorbed fact-table rows into the exact result host-side (see
/// ArOptions::delta); their merge time lands in breakdown.host_seconds.
StatusOr<StreamingExecution> ExecuteStreaming(
    const QuerySpec& query, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache,
    const storage::DeltaBatch* delta = nullptr);

namespace detail {

/// The original single-join body. The public ExecuteStreaming (defined in
/// plan_exec.cpp) routes lowered single-join plans straight back here so
/// results and error statuses stay bit-identical; multi-join plans take
/// the general plan executor.
StatusOr<StreamingExecution> ExecuteStreamingLegacy(
    const QuerySpec& query, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache);

}  // namespace detail

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_STREAMING_ENGINE_H_
