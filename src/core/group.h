// A&R grouping (paper §IV-E).
//
// The approximation pre-groups tuples by their approximate values with a
// device hash table (conflicting atomic writes make this cheaper the more
// groups there are — the Fig 8f effect, which the cost model captures via
// distinct_write_targets). The output is positionally aligned with its
// input. Multi-attribute grouping chains pre-groupings (MonetDB's
// group.derive): each additional column subdivides the prior groups.
//
// The refinement (a) eliminates earlier operators' false positives with a
// translucent join against the refined id set and (b) when grouping
// columns have residual bits, subdivides each pre-group by the residual
// digits (a subgrouping), yielding exact groups.

#ifndef WASTENOT_CORE_GROUP_H_
#define WASTENOT_CORE_GROUP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bwd/bwd_column.h"
#include "core/candidates.h"
#include "device/device.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wastenot::core {

/// Device pre-grouping on approximate values, aligned with its input rows.
struct ApproxGrouping {
  std::vector<uint32_t> group_ids;  ///< aligned with the grouped input
  uint64_t num_groups = 0;
  /// Input position (index into the grouped row set) of the first member
  /// of each group.
  std::vector<uint64_t> first_positions;
};

/// Pre-groups all rows of `column` (cands == nullptr) or the candidate
/// subset, by approximation digit, on the device. Group ids are dense and
/// assigned in first-occurrence (input) order, so the output is
/// deterministic for a given input. Not thread-safe with respect to `dev`.
ApproxGrouping GroupApproximate(const bwd::BwdColumn& column,
                                const Candidates* cands,
                                device::Device* dev);

/// Subdivides `prior` by `column`'s approximation digits (multi-attribute
/// grouping). Input alignment must match `prior.group_ids`. Same
/// determinism and device caveats as GroupApproximate.
ApproxGrouping GroupApproximateSub(const bwd::BwdColumn& column,
                                   const Candidates* cands,
                                   const ApproxGrouping& prior,
                                   device::Device* dev);

/// Exact grouping produced by refinement.
struct RefinedGrouping {
  std::vector<uint32_t> group_ids;  ///< aligned with the refined id set
  uint64_t num_groups = 0;
  cs::OidVec first_ids;  ///< a representative tuple id per group
};

/// Refines `pre` (aligned with `cands`) onto the refined id subset:
/// translucent join to drop false positives, then subgrouping by the
/// residual digits of every decomposed grouping column. `refined_ids` must
/// be a subset of `cands.ids` in the same permutation; `columns` are the
/// grouping columns that fed the pre-grouping, in order.
///
/// Morsel-parallel over `ctx`: each morsel builds a partial group table,
/// and the tables are merged by group key in morsel order, so final group
/// ids keep the global first-occurrence order and the output — group_ids,
/// num_groups, first_ids — is bit-identical for any pool size (including
/// the serial default). Thread-safe: shared inputs are read-only.
StatusOr<RefinedGrouping> GroupRefine(
    std::span<const bwd::BwdColumn* const> columns, const ApproxGrouping& pre,
    const Candidates& cands, const cs::OidVec& refined_ids,
    const MorselContext& ctx = {});

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_GROUP_H_
