// A&R aggregation (paper §IV-F).
//
//  * count  — trivial: the candidate count bounds the exact count from
//    above, the certain count from below; refinement counts refined ids.
//  * sum / avg — approximated as interval sums of per-row bounds. Exact
//    refinement of sums over *products* is impossible from result
//    approximations alone (destructive distributivity, §IV-G), so the
//    refinement recomputes from exact operand values on the CPU.
//  * min / max — the approximation must output a *candidate set* that
//    provably contains the true extremum even in the presence of selection
//    false positives (the Fig 6 hazard). The rule implemented here:
//    threshold = min over *certain* candidates of the value's upper bound;
//    survivors = all candidates whose lower bound <= threshold. Since the
//    true minimum is <= every certain row's exact value, its lower bound
//    is <= threshold, so it always survives.

#ifndef WASTENOT_CORE_AGGREGATE_H_
#define WASTENOT_CORE_AGGREGATE_H_

#include <optional>
#include <vector>

#include "bwd/bwd_column.h"
#include "core/candidates.h"
#include "device/device.h"
#include "util/status.h"

namespace wastenot::core {

/// ----- count ------------------------------------------------------------

/// Bounds of a count given candidates and their certainty flags.
ValueBounds CountApproximate(const Candidates& cands, uint64_t num_certain);

/// ----- sum --------------------------------------------------------------

/// Interval sum of per-row bounds (device reduction).
ValueBounds SumApproximate(const BoundedValues& values, device::Device* dev);

/// Grouped interval sums; values aligned with group_ids.
std::vector<ValueBounds> GroupedSumApproximate(
    const BoundedValues& values, const std::vector<uint32_t>& group_ids,
    uint64_t num_groups, device::Device* dev);

/// Exact sum over exact values (CPU refinement).
int64_t SumRefine(const std::vector<int64_t>& exact_values);
std::vector<int64_t> GroupedSumRefine(const std::vector<int64_t>& exact_values,
                                      const std::vector<uint32_t>& group_ids,
                                      uint64_t num_groups);

/// ----- min / max ---------------------------------------------------------

/// The candidate set of an extremum approximation.
struct ExtremumCandidates {
  Candidates survivors;       ///< ids that may hold the true extremum
  cs::OidVec positions;       ///< positions of survivors in the input cands
  int64_t threshold = 0;      ///< the pruning bound used
  ValueBounds bounds{0, 0};   ///< interval containing the true extremum
};

/// Approximate minimum of `target` over a candidate set with certainty
/// flags (the propagated selection error bounds of Fig 6). `certain` is
/// aligned with `cands`; an empty span means every candidate is certain.
ExtremumCandidates MinApproximate(const bwd::BwdColumn& target,
                                  const Candidates& cands,
                                  std::span<const uint8_t> certain,
                                  device::Device* dev);
/// Approximate maximum (mirror image).
ExtremumCandidates MaxApproximate(const bwd::BwdColumn& target,
                                  const Candidates& cands,
                                  std::span<const uint8_t> certain,
                                  device::Device* dev);

/// Refines an extremum: keeps the survivors that are in `refined_ids`
/// (translucent join), reconstructs exact values, reduces.
/// Returns nullopt when the refined set is empty.
StatusOr<std::optional<int64_t>> MinRefine(const bwd::BwdColumn& target,
                                           const ExtremumCandidates& approx,
                                           const cs::OidVec& refined_ids);
StatusOr<std::optional<int64_t>> MaxRefine(const bwd::BwdColumn& target,
                                           const ExtremumCandidates& approx,
                                           const cs::OidVec& refined_ids);

/// ----- avg ---------------------------------------------------------------

/// Bounds of an average from sum bounds and count bounds (count_lo may be
/// 0; the result is then the widest sound interval for a non-empty input).
ValueBounds AvgBounds(const ValueBounds& sum, const ValueBounds& count);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_AGGREGATE_H_
