// A&R aggregation (paper §IV-F).
//
//  * count  — trivial: the candidate count bounds the exact count from
//    above, the certain count from below; refinement counts refined ids.
//  * sum / avg — approximated as interval sums of per-row bounds. Exact
//    refinement of sums over *products* is impossible from result
//    approximations alone (destructive distributivity, §IV-G), so the
//    refinement recomputes from exact operand values on the CPU.
//  * min / max — the approximation must output a *candidate set* that
//    provably contains the true extremum even in the presence of selection
//    false positives (the Fig 6 hazard). The rule implemented here:
//    threshold = min over *certain* candidates of the value's upper bound;
//    survivors = all candidates whose lower bound <= threshold. Since the
//    true minimum is <= every certain row's exact value, its lower bound
//    is <= threshold, so it always survives.

#ifndef WASTENOT_CORE_AGGREGATE_H_
#define WASTENOT_CORE_AGGREGATE_H_

#include <optional>
#include <vector>

#include "bwd/bwd_column.h"
#include "core/candidates.h"
#include "device/device.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wastenot::core {

/// ----- count ------------------------------------------------------------

/// Bounds of a count given candidates and their certainty flags. Pure
/// function; thread-safe.
ValueBounds CountApproximate(const Candidates& cands, uint64_t num_certain);

/// ----- sum --------------------------------------------------------------

/// Interval sum of per-row bounds (device reduction). Not thread-safe with
/// respect to `dev` (clock charging); result is order-independent.
ValueBounds SumApproximate(const BoundedValues& values, device::Device* dev);

/// Grouped interval sums; values aligned with group_ids. Same device
/// caveat as SumApproximate.
std::vector<ValueBounds> GroupedSumApproximate(
    const BoundedValues& values, const std::vector<uint32_t>& group_ids,
    uint64_t num_groups, device::Device* dev);

/// Exact sum over exact values (CPU refinement). Morsel-parallel over
/// `ctx` with per-worker partials merged at the barrier; int64 addition is
/// associative, so the result is identical for any pool size.
int64_t SumRefine(const std::vector<int64_t>& exact_values,
                  const MorselContext& ctx = {});

/// The shared per-worker grouped-accumulation shape of Phase R: runs
/// body(begin, end, partial) over [0, n) in block-aligned morsels, where
/// `partial` is the calling worker's private num_groups-sized vector, and
/// returns the element-wise sum of all partials (merged in worker order —
/// int64 addition makes the result identical for any pool size).
/// `bits_per_elem` sizes the default morsel (ctx.morsel_elems overrides).
/// Thread-safe as long as `body` only reads shared state.
std::vector<int64_t> ParallelGroupedAccumulate(
    const MorselContext& ctx, uint64_t n, uint64_t num_groups,
    uint64_t bits_per_elem,
    const std::function<void(uint64_t, uint64_t, std::vector<int64_t>&)>&
        body);

/// Exact per-group sums (CPU refinement); `exact_values` aligned with
/// `group_ids`, every group id < num_groups. Morsel-parallel over `ctx`:
/// each worker accumulates into a private num_groups-sized partial vector,
/// merged in worker order at the barrier — bit-identical to the serial
/// pass for any pool size.
std::vector<int64_t> GroupedSumRefine(const std::vector<int64_t>& exact_values,
                                      const std::vector<uint32_t>& group_ids,
                                      uint64_t num_groups,
                                      const MorselContext& ctx = {});

/// ----- min / max ---------------------------------------------------------

/// The candidate set of an extremum approximation.
struct ExtremumCandidates {
  Candidates survivors;       ///< ids that may hold the true extremum
  cs::OidVec positions;       ///< positions of survivors in the input cands
  int64_t threshold = 0;      ///< the pruning bound used
  ValueBounds bounds{0, 0};   ///< interval containing the true extremum
};

/// Approximate minimum of `target` over a candidate set with certainty
/// flags (the propagated selection error bounds of Fig 6). `certain` is
/// aligned with `cands`; an empty span means every candidate is certain.
/// Survivors keep candidate order. Not thread-safe with respect to `dev`.
ExtremumCandidates MinApproximate(const bwd::BwdColumn& target,
                                  const Candidates& cands,
                                  std::span<const uint8_t> certain,
                                  device::Device* dev);
/// Approximate maximum (mirror image of MinApproximate, same contracts).
ExtremumCandidates MaxApproximate(const bwd::BwdColumn& target,
                                  const Candidates& cands,
                                  std::span<const uint8_t> certain,
                                  device::Device* dev);

/// Refines an extremum: keeps the survivors that are in `refined_ids`
/// (translucent join), reconstructs exact values, reduces.
/// Returns nullopt when the refined set is empty. Morsel-parallel over
/// `ctx` with per-worker bests merged at the barrier; min/max reduction is
/// order-independent, so the result is identical for any pool size.
StatusOr<std::optional<int64_t>> MinRefine(const bwd::BwdColumn& target,
                                           const ExtremumCandidates& approx,
                                           const cs::OidVec& refined_ids,
                                           const MorselContext& ctx = {});
StatusOr<std::optional<int64_t>> MaxRefine(const bwd::BwdColumn& target,
                                           const ExtremumCandidates& approx,
                                           const cs::OidVec& refined_ids,
                                           const MorselContext& ctx = {});

/// ----- avg ---------------------------------------------------------------

/// Bounds of an average from sum bounds and count bounds (count_lo may be
/// 0; the result is then the widest sound interval for a non-empty input).
/// Pure function; thread-safe.
ValueBounds AvgBounds(const ValueBounds& sum, const ValueBounds& count);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_AGGREGATE_H_
