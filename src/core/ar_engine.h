// The Approximate & Refine query engine (paper §III and §V).
//
// ExecuteAr compiles a QuerySpec into an A&R physical plan — each classic
// operator replaced by an approximation/refinement pair, approximate
// selections pushed down (the bwd_pipe rewriter + rule-based optimizer of
// §V-B) — and executes it in two phases:
//
//   Phase A (device): the approximation subplan. No approximate operator
//   depends on a refinement result, so the full subplan runs to completion
//   and yields an ApproximateAnswer with strict error bounds before any
//   refinement work starts.
//
//   Phase boundary: the candidate ids, approximate values, certainty flags
//   and pre-group ids that refinement consumes cross the PCI-E bus
//   (charged to the bus clock).
//
//   Phase R (host, measured): fused selection refinement (Algorithm 2),
//   translucent-join alignment, residual subgrouping, exact recomputation
//   of destructively-distributive expressions, final aggregation.
//
// The returned breakdown carries simulated device seconds, simulated bus
// seconds and measured host seconds — the GPU/CPU/PCI bars of Figs 9-10.

#ifndef WASTENOT_CORE_AR_ENGINE_H_
#define WASTENOT_CORE_AR_ENGINE_H_

#include <functional>
#include <string>

#include "bwd/bwd_table.h"
#include "core/query.h"
#include "device/device.h"
#include "util/status.h"

namespace wastenot::storage {
class DeltaBatch;  // storage/delta_store.h
}

namespace wastenot::core {

/// Per-device time attribution of one execution.
struct ExecutionBreakdown {
  double device_seconds = 0;  ///< simulated co-processor time
  double bus_seconds = 0;     ///< simulated PCI-E time
  double host_seconds = 0;    ///< measured CPU (refinement) wall time
  /// Measured CPU seconds *consumed* by refinement: wall time of the
  /// serial sections plus the summed busy time of every worker inside the
  /// morsel-parallel sections. With num_threads == 1 this equals
  /// host_seconds; under a pool it approaches host_seconds × threads when
  /// refinement scales, so host_cpu_seconds / host_seconds is the measured
  /// parallel speedup of Phase R.
  double host_cpu_seconds = 0;
  /// Wall-clock total (host_seconds, not host_cpu_seconds — the bars of
  /// Figs 9-10 stack wall times).
  double total() const { return device_seconds + bus_seconds + host_seconds; }
};

/// Tuning knobs (the ablation levers of DESIGN.md §4).
struct ArOptions {
  /// Rule-based optimizer: order approximate selections most-selective
  /// first (paper §III-A). Off = evaluate in the user-given order.
  bool pushdown = true;
  /// Skip refinement stages whose inputs are provably exact (the
  /// all-device-resident fast path). Off = always refine (ablation).
  bool skip_exact_refinement = true;
  /// Host threads for the morsel-parallel refinement phase (Phase R).
  /// 0 = hardware concurrency (the process-wide default pool, overridable
  /// with WN_THREADS); 1 = fully serial — the pre-morsel behavior, kept
  /// for ablation; N > 1 = a shared pool of exactly N workers. Phase R
  /// results are bit-identical across all settings; only timing moves.
  unsigned num_threads = 0;
  /// Morsel size override for Phase R (elements, rounded up to a multiple
  /// of 64). 0 = per-operator defaults (~256 KiB of packed payload).
  /// Tests shrink this so small inputs straddle many morsels and the
  /// parallel merge paths actually run; leave at 0 in production.
  uint64_t morsel_elems = 0;
  /// Progressive serving hook (paper §III advantage 4: the approximate
  /// answer is available before any refinement work). When set, invoked
  /// exactly once at the Phase-A/Phase-R boundary — on the executing
  /// thread, before any refinement starts — with the same ApproximateAnswer
  /// the execution later returns in ArExecution::approx. Must not throw and
  /// must not call back into the engine. Not invoked when validation fails
  /// before Phase A completes. Leaving it empty changes nothing: results
  /// are bit-identical with and without the hook.
  std::function<void(const ApproximateAnswer&)> on_approximate;
  /// Unabsorbed fact-table delta rows (DESIGN.md §9.2): appended rows the
  /// base BwdTable does not cover yet. When set, the execution unions them
  /// in exactly — delta rows are host-resident exact candidates, so their
  /// "refinement" is a direct evaluation — and the result is bit-identical
  /// to executing against a table that already absorbed them. The
  /// ApproximateAnswer (returned and passed to on_approximate) is merged
  /// soundly: its bounds still contain the combined exact result. The
  /// caller keeps the batch alive for the whole call (engines hold no
  /// reference afterwards). Null = base table only.
  const storage::DeltaBatch* delta = nullptr;
};

/// Everything one A&R execution produces.
struct ArExecution {
  QueryResult result;          ///< exact, canonical order
  ApproximateAnswer approx;    ///< the phase-A answer with bounds
  ExecutionBreakdown breakdown;
  uint64_t num_candidates = 0; ///< size of the candidate set after phase A
  uint64_t num_refined = 0;    ///< rows surviving refinement
  std::string plan_text;       ///< rendered physical plan (Fig 7 style)
};

/// Executes `query` with the A&R engine. `dim` may be null when the query
/// has no join. All referenced columns must have been decomposed into the
/// respective BwdTable.
///
/// The result (rows, groups, bounds, canonical order) is deterministic for
/// a given query and data, independent of options.num_threads and of the
/// device's worker count.
///
/// Thread-safe with respect to `dev`: every shared device structure the
/// execution touches (arena, kernel cache, clock, worker pool) is itself
/// thread-safe, and per-query time attribution goes through a
/// SimClock::QueryScope on the calling thread, so N concurrent calls on
/// one shared device return bit-identical results to serial execution
/// with breakdowns that sum to the global clock delta (DESIGN.md §3.3;
/// pinned by tests/core/concurrent_ar_test.cpp). With
/// options.num_threads == 0 concurrent calls share the default host pool,
/// which is safe under concurrent ParallelFor* loops.
StatusOr<ArExecution> ExecuteAr(const QuerySpec& query,
                                const bwd::BwdTable& fact,
                                const bwd::BwdTable* dim,
                                device::Device* dev,
                                const ArOptions& options = {});

namespace detail {

/// The original single-join ExecuteAr body, unchanged. The public
/// ExecuteAr (defined in plan_exec.cpp) lowers the spec into the plan
/// algebra and dispatches lowered single-join plans straight back here,
/// so results *and* error statuses stay bit-identical to the pre-plan
/// engine; only genuinely multi-join plans take the general executors.
StatusOr<ArExecution> ExecuteArLegacy(const QuerySpec& query,
                                      const bwd::BwdTable& fact,
                                      const bwd::BwdTable* dim,
                                      device::Device* dev,
                                      const ArOptions& options);

}  // namespace detail

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_AR_ENGINE_H_
