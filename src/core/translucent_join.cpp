#include "core/translucent_join.h"

namespace wastenot::core {

bool SortedAndDense(std::span<const cs::oid_t> a) {
  if (a.empty()) return true;
  const cs::oid_t base = a[0];
  for (uint64_t i = 1; i < a.size(); ++i) {
    if (a[i] != base + i) return false;
  }
  return true;
}

StatusOr<cs::OidVec> TranslucentJoinPositions(std::span<const cs::oid_t> a,
                                              std::span<const cs::oid_t> b) {
  cs::OidVec positions;
  positions.reserve(b.size());
  uint64_t ia = 0;
  // Advance the A cursor until it matches the current B element; never
  // rewind (precondition 3 guarantees the partner lies ahead).
  for (uint64_t ib = 0; ib < b.size(); ++ib) {
    const cs::oid_t needle = b[ib];
    while (ia < a.size() && a[ia] != needle) ++ia;
    if (ia == a.size()) {
      return Status::PreconditionFailed(
          "translucent join: id " + std::to_string(needle) +
          " of the refined input not found (in order) in the candidate "
          "input — subset/permutation contract violated");
    }
    positions.push_back(static_cast<cs::oid_t>(ia));
    ++ia;  // ids are unique; the next partner is strictly ahead
  }
  return positions;
}

StatusOr<cs::OidVec> TranslucentJoinPositionsAuto(
    std::span<const cs::oid_t> a, std::span<const cs::oid_t> b) {
  // Invisible-join fast path (Algorithm 1's SORTED ∧ DENSE branch).
  if (SortedAndDense(a)) {
    const cs::oid_t base = a.empty() ? 0 : a[0];
    cs::OidVec positions;
    positions.reserve(b.size());
    for (cs::oid_t id : b) {
      if (id < base || id - base >= a.size()) {
        return Status::PreconditionFailed(
            "translucent join (invisible path): id " + std::to_string(id) +
            " outside the dense candidate range");
      }
      positions.push_back(id - base);
    }
    return positions;
  }
  return TranslucentJoinPositions(a, b);
}

}  // namespace wastenot::core
