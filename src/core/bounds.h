// Strict error bounds for approximate values (paper §III "Approximation":
// arithmetic on approximate inputs "yields the expected value and strict
// error bounds of the result based on the approximate inputs").
//
// A ValueBounds is a closed integer interval guaranteed to contain the
// exact value. Interval arithmetic here is *sound* (never excludes the true
// value); tightness is best-effort. Multiplication is where destructive
// distributivity (paper §IV-G) shows: the exact product cannot be recovered
// from the operand approximations, only bounded.

#ifndef WASTENOT_CORE_BOUNDS_H_
#define WASTENOT_CORE_BOUNDS_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace wastenot::core {

/// A closed interval [lo, hi] certain to contain an exact (int64) value.
struct ValueBounds {
  int64_t lo = 0;
  int64_t hi = 0;

  static ValueBounds Exact(int64_t v) { return {v, v}; }
  /// Interval of an approximation digit: [lower, lower + error].
  static ValueBounds FromApproximation(int64_t lower, uint64_t error) {
    return {lower, lower + static_cast<int64_t>(error)};
  }

  bool IsExact() const { return lo == hi; }
  int64_t width() const { return hi - lo; }
  bool Contains(int64_t v) const { return v >= lo && v <= hi; }
  /// Midpoint, the natural point estimate of the interval.
  int64_t Estimate() const { return lo + (hi - lo) / 2; }

  bool Overlaps(int64_t range_lo, int64_t range_hi) const {
    return hi >= range_lo && lo <= range_hi;
  }

  ValueBounds operator+(const ValueBounds& o) const {
    return {lo + o.lo, hi + o.hi};
  }
  ValueBounds operator-(const ValueBounds& o) const {
    return {lo - o.hi, hi - o.lo};
  }
  /// Interval product: min/max over the four corner products.
  ValueBounds operator*(const ValueBounds& o) const {
    const int64_t a = lo * o.lo, b = lo * o.hi, c = hi * o.lo, d = hi * o.hi;
    return {std::min(std::min(a, b), std::min(c, d)),
            std::max(std::max(a, b), std::max(c, d))};
  }

  /// Scales by a constant (sign-aware).
  ValueBounds Scale(int64_t k) const {
    return k >= 0 ? ValueBounds{lo * k, hi * k} : ValueBounds{hi * k, lo * k};
  }
  /// Shifts by a constant.
  ValueBounds Shift(int64_t k) const { return {lo + k, hi + k}; }
  /// Negation (for (c - x) terms).
  ValueBounds Negate() const { return {-hi, -lo}; }

  /// Sound quotient by a constant divisor (k != 0), rounding outward.
  ValueBounds DivideBy(int64_t k) const;

  /// Sound integer square root bounds (inputs clamped at 0).
  ValueBounds Sqrt() const;

  std::string ToString() const {
    return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
  }
};

/// Floor division that rounds toward negative infinity (sound lower end).
inline int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
/// Ceiling division that rounds toward positive infinity (sound upper end).
inline int64_t CeilDivSigned(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

inline ValueBounds ValueBounds::DivideBy(int64_t k) const {
  if (k > 0) return {FloorDiv(lo, k), CeilDivSigned(hi, k)};
  return {FloorDiv(hi, k), CeilDivSigned(lo, k)};
}

/// Integer sqrt (floor).
inline int64_t ISqrt(int64_t v) {
  if (v <= 0) return 0;
  int64_t x = static_cast<int64_t>(std::max(0.0, __builtin_sqrt(
                                                     static_cast<double>(v))));
  while (x > 0 && x * x > v) --x;
  while ((x + 1) * (x + 1) <= v) ++x;
  return x;
}

inline ValueBounds ValueBounds::Sqrt() const {
  const int64_t l = std::max<int64_t>(lo, 0);
  const int64_t h = std::max<int64_t>(hi, 0);
  int64_t hs = ISqrt(h);
  if (hs * hs < h) ++hs;  // round the upper end outward
  return {ISqrt(l), hs};
}

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_BOUNDS_H_
