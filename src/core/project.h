// A&R projection (paper §IV-C) and foreign-key join (paper §IV-D).
//
// Projection approximation = an invisible join (positional gather) of the
// candidate id set against the device-resident approximation digits. When
// all bits of the target are device-resident, the result is already exact
// and no refinement is needed. Otherwise the refinement joins the
// approximation output with the host residual (a translucent — in practice
// invisible — join) to reconstruct exact values.
//
// FK joins with a pre-built index are equivalent to projective joins and
// share this code (paper: "With a pre-built hashtable, a foreign-key join
// is equivalent to a projective join... they share the same code"). The
// fk column maps fact rows to dimension oids; a projection *through* the
// fk column gathers dimension-attribute approximations for fact
// candidates.

#ifndef WASTENOT_CORE_PROJECT_H_
#define WASTENOT_CORE_PROJECT_H_

#include <vector>

#include "bwd/bwd_column.h"
#include "columnstore/column.h"
#include "core/candidates.h"
#include "device/device.h"
#include "util/thread_pool.h"

namespace wastenot::core {

/// Device-side gather of approximation digits at the candidate ids;
/// returns lower-bound values aligned with `cands`.
ApproxValues ProjectApproximate(const bwd::BwdColumn& column,
                                const Candidates& cands,
                                device::Device* dev);

/// Refinement: exact values at `ids`, reconstructed from the (cached)
/// approximation and the residual. `approx_aligned`, when given, must be
/// aligned with `ids` and saves re-reading the approximation. Output is
/// positionally aligned with `ids`; morsel-parallel over `ctx` with
/// disjoint output ranges per morsel, so the result is bit-identical for
/// any pool size (including the serial default).
std::vector<int64_t> ProjectRefine(const bwd::BwdColumn& column,
                                   const cs::OidVec& ids,
                                   const ApproxValues* approx_aligned = nullptr,
                                   const MorselContext& ctx = {});

/// FK-join approximation: gathers `dim_attribute` approximations for the
/// fact candidates through the fully-resident fk column:
/// out[i] = approx(dim_attribute[fk[cands.ids[i]]]).
/// Requires the fk column to be fully device-resident (join keys are never
/// decomposed; approximate keys would make the positional gather
/// ill-defined — see DESIGN.md).
StatusOr<ApproxValues> FkJoinApproximate(const bwd::BwdColumn& fk,
                                         const bwd::BwdColumn& dim_attribute,
                                         const Candidates& cands,
                                         device::Device* dev);

/// FK-join refinement: exact dimension-attribute values for fact `ids`,
/// positionally aligned with `ids`. Morsel-parallel over `ctx` (disjoint
/// output ranges); bit-identical for any pool size.
StatusOr<std::vector<int64_t>> FkJoinRefine(const bwd::BwdColumn& fk,
                                            const bwd::BwdColumn& dim_attribute,
                                            const cs::OidVec& ids,
                                            const MorselContext& ctx = {});

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_PROJECT_H_
