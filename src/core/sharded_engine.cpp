#include "core/sharded_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace wastenot::core {

namespace {

/// Shard fan-out pool selection, mirroring the Phase-R convention:
/// 1 = serial, 0 = the shared default pool, N = a shared pool of N.
ThreadPool* FanPool(unsigned num_threads) {
  if (num_threads == 1) return nullptr;
  if (num_threads == 0) {
    ThreadPool& def = ThreadPool::Default();
    return def.num_threads() > 1 ? &def : nullptr;
  }
  static std::mutex mu;
  static std::map<unsigned, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& pool = pools[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return pool.get();
}

bool IsExtremum(AggFunc f) {
  return f == AggFunc::kMin || f == AggFunc::kMax;
}

/// Everything the merge discipline needs to know about a query — derivable
/// identically from a QuerySpec or a PhysicalPlan, so sharded plans merge
/// with the same code as sharded specs.
struct MergeShape {
  std::vector<std::string> key_names;
  std::vector<std::string> agg_labels;
  std::vector<AggFunc> funcs;
  bool grouped = false;
};

MergeShape ShapeOf(const QuerySpec& query) {
  MergeShape shape;
  for (const auto& name : query.group_by) shape.key_names.push_back(name);
  for (const auto& agg : query.aggregates) {
    shape.agg_labels.push_back(agg.label);
    shape.funcs.push_back(agg.func);
  }
  shape.grouped = !query.group_by.empty();
  return shape;
}

MergeShape ShapeOf(const PhysicalPlan& plan) {
  MergeShape shape;
  for (const auto& key : plan.group_agg.group_by) {
    shape.key_names.push_back(key.column);
  }
  for (const auto& agg : plan.group_agg.aggregates) {
    shape.agg_labels.push_back(agg.label);
    shape.funcs.push_back(agg.func);
  }
  shape.grouped = !plan.group_agg.group_by.empty();
  return shape;
}

/// Merges per-shard exact results into the single-device result. Both
/// engines materialize groups by *exact* key tuple; every additive
/// aggregate (count, sum, avg-as-sum) is an int64 sum (modular addition is
/// commutative and associative, so shard boundaries cannot change it);
/// min/max merges the per-group extrema of shards whose group selected
/// rows (the engines report 0 for an extremum over an empty set, which the
/// `seen` gate reproduces); the merged table is re-sorted into canonical
/// key order. Bit-identity with the unpartitioned run is property-tested.
QueryResult MergeExactResults(const MergeShape& shape,
                              const std::vector<const QueryResult*>& parts) {
  QueryResult out;
  out.key_names = shape.key_names;
  out.agg_labels = shape.agg_labels;
  const bool grouped = shape.grouped;
  const uint64_t num_aggs = shape.funcs.size();

  for (const QueryResult* part : parts) {
    out.selected_rows += part->selected_rows;
  }

  // Per merged group: running aggregate values, the count, and whether an
  // extremum has been seeded yet (only shards whose group holds rows may
  // contribute — an empty group's reported extremum is the 0 placeholder).
  struct GroupAcc {
    std::vector<int64_t> aggs;
    std::vector<bool> extremum_seen;
    int64_t count = 0;
  };
  auto fold = [&](GroupAcc& acc, const QueryResult& part, uint64_t g) {
    if (acc.aggs.empty()) {
      acc.aggs.assign(num_aggs, 0);
      acc.extremum_seen.assign(num_aggs, false);
    }
    acc.count += part.group_counts[g];
    for (uint64_t a = 0; a < num_aggs; ++a) {
      const AggFunc func = shape.funcs[a];
      const int64_t v = part.agg_values[g][a];
      if (!IsExtremum(func)) {
        acc.aggs[a] += v;
      } else if (part.group_counts[g] > 0) {
        if (!acc.extremum_seen[a]) {
          acc.aggs[a] = v;
          acc.extremum_seen[a] = true;
        } else {
          acc.aggs[a] =
              func == AggFunc::kMin ? std::min(acc.aggs[a], v)
                                    : std::max(acc.aggs[a], v);
        }
      }
    }
  };

  if (!grouped) {
    // Ungrouped executions always materialize exactly one (possibly
    // all-zero) group; so does the merge.
    GroupAcc acc;
    acc.aggs.assign(num_aggs, 0);
    acc.extremum_seen.assign(num_aggs, false);
    for (const QueryResult* part : parts) fold(acc, *part, 0);
    out.group_keys.resize(1);
    out.agg_values.assign(1, std::move(acc.aggs));
    out.group_counts.assign(1, acc.count);
    return out;
  }

  // Grouped: union by exact key tuple (std::map iterates keys in the same
  // lexicographic order SortByKeys produces).
  std::map<std::vector<int64_t>, GroupAcc> groups;
  for (const QueryResult* part : parts) {
    for (uint64_t g = 0; g < part->num_groups(); ++g) {
      fold(groups[part->group_keys[g]], *part, g);
    }
  }
  for (auto& [keys, acc] : groups) {
    out.group_keys.push_back(keys);
    out.agg_values.push_back(std::move(acc.aggs));
    out.group_counts.push_back(acc.count);
  }
  out.SortByKeys();
  return out;
}

/// Interval sum.
ValueBounds AddBounds(const ValueBounds& a, const ValueBounds& b) {
  return ValueBounds{a.lo + b.lo, a.hi + b.hi};
}
/// Interval hull (smallest interval containing both).
ValueBounds HullBounds(const ValueBounds& a, const ValueBounds& b) {
  return ValueBounds{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/// Merges per-shard approximate answers into sound group-level bounds.
/// Counts and sums add as intervals; averages take the hull over shards
/// that may contribute rows (the global average is a convex combination of
/// shard averages); extrema combine per-shard global-extremum intervals
/// with certainty-aware upper ends. Pre-groups match across shards by
/// their key-bound tuples — identical DecompositionSpecs make those a
/// bijection of the approximation digits.
ApproximateAnswer MergeApproxAnswers(
    const MergeShape& shape,
    const std::vector<const ApproximateAnswer*>& parts) {
  ApproximateAnswer out;
  const bool grouped = shape.grouped;
  const uint64_t num_aggs = shape.funcs.size();

  for (const ApproximateAnswer* part : parts) {
    out.row_count = AddBounds(out.row_count, part->row_count);
  }

  // Global extremum bounds across shards. A shard that may hold rows
  // (count upper bound > 0) contributes its interval's lower end; only a
  // shard that *certainly* holds a row can cap the upper end (for min —
  // symmetric for max).
  std::vector<ValueBounds> extremum(num_aggs, ValueBounds{0, 0});
  for (uint64_t a = 0; a < num_aggs; ++a) {
    if (!IsExtremum(shape.funcs[a])) continue;
    const bool is_min = shape.funcs[a] == AggFunc::kMin;
    bool any = false, any_certain = false;
    int64_t lo = 0, hi_certain = 0, hi_fallback = 0;
    for (const ApproximateAnswer* part : parts) {
      if (part->row_count.hi <= 0 || part->num_groups() == 0) continue;
      const ValueBounds& b = part->agg_bounds[0][a];
      if (!any) {
        lo = is_min ? b.lo : b.hi;
        hi_fallback = is_min ? b.hi : b.lo;
        any = true;
      } else if (is_min) {
        lo = std::min(lo, b.lo);
        hi_fallback = std::max(hi_fallback, b.hi);
      } else {
        lo = std::max(lo, b.hi);
        hi_fallback = std::min(hi_fallback, b.lo);
      }
      if (part->row_count.lo > 0) {
        const int64_t cap = is_min ? b.hi : b.lo;
        if (!any_certain) {
          hi_certain = cap;
          any_certain = true;
        } else {
          hi_certain = is_min ? std::min(hi_certain, cap)
                              : std::max(hi_certain, cap);
        }
      }
    }
    if (any) {
      const int64_t cap = any_certain ? hi_certain : hi_fallback;
      extremum[a] = is_min ? ValueBounds{lo, cap} : ValueBounds{cap, lo};
    }
  }

  auto merge_agg = [&](uint64_t a, std::optional<ValueBounds>& acc,
                       const ValueBounds& b) {
    const AggFunc func = shape.funcs[a];
    if (IsExtremum(func)) {
      acc = extremum[a];
    } else if (func == AggFunc::kAvg) {
      acc = acc.has_value() ? HullBounds(*acc, b) : b;
    } else {
      acc = acc.has_value() ? AddBounds(*acc, b) : b;
    }
  };

  if (!grouped) {
    out.key_bounds.resize(1);
    out.agg_bounds.resize(1);
    std::vector<std::optional<ValueBounds>> acc(num_aggs);
    for (const ApproximateAnswer* part : parts) {
      if (part->num_groups() == 0) continue;
      for (uint64_t a = 0; a < num_aggs; ++a) {
        // An avg over a provably empty shard cannot move the global average.
        if (shape.funcs[a] == AggFunc::kAvg &&
            part->row_count.hi <= 0 && acc[a].has_value()) {
          continue;
        }
        merge_agg(a, acc[a], part->agg_bounds[0][a]);
      }
    }
    for (uint64_t a = 0; a < num_aggs; ++a) {
      out.agg_bounds[0].push_back(acc[a].value_or(ValueBounds{0, 0}));
    }
    return out;
  }

  // Grouped: pre-groups with identical key-bound tuples are the same
  // approximate group (shard-invariant digits), so they merge; distinct
  // tuples stay separate rows of the approximate answer.
  struct PreGroup {
    std::vector<ValueBounds> keys;
    std::vector<std::optional<ValueBounds>> aggs;
  };
  std::map<std::vector<int64_t>, PreGroup> pre_groups;
  for (const ApproximateAnswer* part : parts) {
    for (uint64_t g = 0; g < part->num_groups(); ++g) {
      std::vector<int64_t> sig;
      sig.reserve(part->key_bounds[g].size() * 2);
      for (const ValueBounds& kb : part->key_bounds[g]) {
        sig.push_back(kb.lo);
        sig.push_back(kb.hi);
      }
      PreGroup& pg = pre_groups[sig];
      if (pg.aggs.empty()) {
        pg.keys = part->key_bounds[g];
        pg.aggs.resize(num_aggs);
      }
      for (uint64_t a = 0; a < num_aggs; ++a) {
        merge_agg(a, pg.aggs[a], part->agg_bounds[g][a]);
      }
    }
  }
  for (auto& [sig, pg] : pre_groups) {
    out.key_bounds.push_back(std::move(pg.keys));
    std::vector<ValueBounds> aggs;
    for (auto& b : pg.aggs) aggs.push_back(b.value_or(ValueBounds{0, 0}));
    out.agg_bounds.push_back(std::move(aggs));
  }
  return out;
}

}  // namespace

cs::RangePred PartitionKeyRange(const QuerySpec& query,
                                const std::string& key_column) {
  cs::RangePred range = cs::RangePred::All();
  for (const Predicate& pred : query.predicates) {
    if (pred.column != key_column) continue;
    range.lo = std::max(range.lo, pred.range.lo);
    range.hi = std::min(range.hi, pred.range.hi);
  }
  return range;
}

cs::RangePred PartitionKeyRange(const PhysicalPlan& plan,
                                const std::string& key_column) {
  // Only hop-0 filters constrain the scanned (partitioned) table; the
  // conjunction is position-independent, so order in the op list is moot.
  cs::RangePred range = cs::RangePred::All();
  for (const PlanOp& op : plan.ops) {
    const auto* f = std::get_if<FilterNode>(&op);
    if (f == nullptr || f->hop != 0 || f->column != key_column) continue;
    range.lo = std::max(range.lo, f->range.lo);
    range.hi = std::min(range.hi, f->range.hi);
  }
  return range;
}

StatusOr<ShardedArExecution> ExecuteArSharded(
    const QuerySpec& query, const bwd::ShardedBwdTable& fact,
    const std::vector<bwd::BwdTable>* dim_replicas, device::DeviceGroup* group,
    const ShardedArOptions& options) {
  if (group == nullptr || group->size() == 0) {
    return Status::InvalidArgument("ExecuteArSharded requires a DeviceGroup");
  }
  if (options.ar.delta != nullptr) {
    return Status::InvalidArgument(
        "delta overlays are not supported in sharded execution (each shard "
        "would double-count the delta rows); query the mutable table's "
        "single-device view instead");
  }
  if (fact.num_shards() == 0) {
    return Status::InvalidArgument("sharded table has no shards");
  }
  if (query.join.has_value() &&
      (dim_replicas == nullptr || dim_replicas->size() < group->size())) {
    return Status::InvalidArgument(
        "join query needs one dimension replica per group device");
  }
  std::vector<BwdTableMap> dim_maps(group->size());
  if (query.join.has_value()) {
    for (uint32_t d = 0; d < group->size(); ++d) {
      dim_maps[d][query.join->dim_table] = &(*dim_replicas)[d];
    }
  }
  return ExecutePlanArSharded(LowerToPlan(query), fact, &dim_maps, group,
                              options);
}

StatusOr<ShardedArExecution> ExecutePlanArSharded(
    const PhysicalPlan& plan, const bwd::ShardedBwdTable& fact,
    const std::vector<BwdTableMap>* dim_maps, device::DeviceGroup* group,
    const ShardedArOptions& options) {
  if (group == nullptr || group->size() == 0) {
    return Status::InvalidArgument("ExecuteArSharded requires a DeviceGroup");
  }
  if (options.ar.delta != nullptr) {
    return Status::InvalidArgument(
        "delta overlays are not supported in sharded execution (each shard "
        "would double-count the delta rows); query the mutable table's "
        "single-device view instead");
  }
  if (fact.num_shards() == 0) {
    return Status::InvalidArgument("sharded table has no shards");
  }
  if (dim_maps != nullptr && dim_maps->size() < group->size()) {
    return Status::InvalidArgument(
        "plan execution needs one decomposed-table map per group device");
  }
  const MergeShape shape = ShapeOf(plan);

  WallTimer wall;
  std::vector<uint32_t> targets;
  if (options.data_local_pruning) {
    targets = bwd::TargetShards(
        fact, PartitionKeyRange(plan, fact.spec().key_column));
  } else {
    for (uint32_t s = 0; s < fact.num_shards(); ++s) targets.push_back(s);
  }

  // Fan shards out over the host pool. Each worker runs one shard's full
  // A&R execution with a serial Phase R: the shard's device kernels join
  // on that device's *own* pool (a cross-pool wait, always safe), while a
  // nested host-pool wait from inside a host-pool worker could deadlock a
  // saturated pool — so intra-shard host parallelism is disabled whenever
  // the fan-out itself is parallel.
  MorselContext fan;
  fan.pool = FanPool(options.ar.num_threads);
  ArOptions shard_options = options.ar;
  if (fan.pool != nullptr) shard_options.num_threads = 1;
  // The per-shard hook slot belongs to the fan-in below; a caller-set one
  // would fire once per shard with unmerged per-shard answers.
  shard_options.on_approximate = nullptr;

  const uint64_t n = targets.size();

  // Progressive fan-in: each shard's Phase-A hook deposits its approximate
  // answer; the worker that deposits the last one merges and fires the
  // user's hook — before the slowest shard's refinement (including its own)
  // has finished. Slots are per-shard (no aliasing); the countdown guards
  // the merge.
  struct ApproxFanIn {
    std::mutex mu;
    std::vector<std::optional<ApproximateAnswer>> parts;
    uint64_t remaining = 0;
  };
  std::shared_ptr<ApproxFanIn> fan_in;
  if (options.on_approximate) {
    fan_in = std::make_shared<ApproxFanIn>();
    fan_in->parts.resize(n);
    fan_in->remaining = n;
  }

  std::vector<std::optional<ArExecution>> runs(n);
  std::vector<Status> statuses(n, Status::OK());
  static const BwdTableMap kNoDims;
  ParallelForItems(fan, n, [&](uint64_t i, unsigned) {
    const uint32_t s = targets[i];
    device::Device* dev = &group->device(s % group->size());
    const BwdTableMap& dims =
        dim_maps != nullptr ? (*dim_maps)[s % group->size()] : kNoDims;
    ArOptions opts = shard_options;
    if (fan_in != nullptr) {
      opts.on_approximate = [&, i](const ApproximateAnswer& answer) {
        bool last = false;
        {
          std::lock_guard<std::mutex> lock(fan_in->mu);
          fan_in->parts[i] = answer;
          last = (--fan_in->remaining == 0);
        }
        if (!last) return;
        std::vector<const ApproximateAnswer*> parts;
        parts.reserve(n);
        for (const auto& part : fan_in->parts) parts.push_back(&*part);
        options.on_approximate(MergeApproxAnswers(shape, parts));
      };
    }
    StatusOr<ArExecution> run =
        ExecutePlanAr(plan, fact.shards[s], dims, dev, opts);
    if (run.ok()) {
      runs[i] = std::move(run).value();
    } else {
      statuses[i] = run.status();
    }
  });
  for (const Status& st : statuses) WN_RETURN_IF_ERROR(st);

  ShardedArExecution out;
  out.executed_shards = targets;
  std::vector<const QueryResult*> results;
  std::vector<const ApproximateAnswer*> approxes;
  for (uint64_t i = 0; i < n; ++i) {
    const ArExecution& run = *runs[i];
    results.push_back(&run.result);
    approxes.push_back(&run.approx);
    out.shard_breakdowns.push_back(run.breakdown);
    out.merged.num_candidates += run.num_candidates;
    out.merged.num_refined += run.num_refined;
    out.merged.breakdown.device_seconds = std::max(
        out.merged.breakdown.device_seconds, run.breakdown.device_seconds);
    out.merged.breakdown.bus_seconds =
        std::max(out.merged.breakdown.bus_seconds, run.breakdown.bus_seconds);
    out.merged.breakdown.host_cpu_seconds += run.breakdown.host_cpu_seconds;
  }
  out.merged.result = MergeExactResults(shape, results);
  out.merged.approx = MergeApproxAnswers(shape, approxes);
  out.merged.plan_text =
      "sharded A&R: " + std::to_string(n) + " of " +
      std::to_string(fact.num_shards()) + " shard(s) on " +
      std::to_string(group->size()) + " device(s), " +
      bwd::PartitionKindToString(fact.spec().kind) + "(" +
      fact.spec().key_column + ")\n" + runs[0]->plan_text;
  out.merged.breakdown.host_seconds = wall.Seconds();
  return out;
}

StatusOr<ShardedStreamingExecution> ExecuteStreamingSharded(
    const QuerySpec& query, const std::vector<cs::Database>& shard_dbs,
    device::DeviceGroup* group, const bwd::TablePartition* partition,
    unsigned fan_out_threads) {
  return ExecutePlanStreamingSharded(LowerToPlan(query), shard_dbs, group,
                                     partition, fan_out_threads);
}

StatusOr<ShardedStreamingExecution> ExecutePlanStreamingSharded(
    const PhysicalPlan& plan, const std::vector<cs::Database>& shard_dbs,
    device::DeviceGroup* group, const bwd::TablePartition* partition,
    unsigned fan_out_threads) {
  if (group == nullptr || group->size() == 0) {
    return Status::InvalidArgument(
        "ExecuteStreamingSharded requires a DeviceGroup");
  }
  if (shard_dbs.empty()) {
    return Status::InvalidArgument("sharded execution has no shard databases");
  }
  if (partition != nullptr && partition->num_shards() != shard_dbs.size()) {
    return Status::InvalidArgument(
        "partition does not describe the shard databases");
  }
  const MergeShape shape = ShapeOf(plan);

  std::vector<uint32_t> targets;
  if (partition != nullptr) {
    targets = bwd::TargetShards(
        *partition, PartitionKeyRange(plan, partition->spec.key_column));
  } else {
    for (uint32_t s = 0; s < shard_dbs.size(); ++s) targets.push_back(s);
  }

  MorselContext fan;
  fan.pool = FanPool(fan_out_threads);

  const uint64_t n = targets.size();
  std::vector<std::optional<StreamingExecution>> runs(n);
  std::vector<Status> statuses(n, Status::OK());
  ParallelForItems(fan, n, [&](uint64_t i, unsigned) {
    const uint32_t s = targets[i];
    const uint32_t d = s % group->size();
    StatusOr<StreamingExecution> run = ExecutePlanStreaming(
        plan, shard_dbs[s], &group->device(d), &group->cache(d));
    if (run.ok()) {
      runs[i] = std::move(run).value();
    } else {
      statuses[i] = run.status();
    }
  });
  for (const Status& st : statuses) WN_RETURN_IF_ERROR(st);

  ShardedStreamingExecution out;
  out.executed_shards = targets;
  WallTimer wall;  // merge-only wall; per-shard host time dominates below
  std::vector<const QueryResult*> results;
  double host_seconds = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const StreamingExecution& run = *runs[i];
    results.push_back(&run.result);
    out.merged.bytes_transferred += run.bytes_transferred;
    out.merged.cache_hits += run.cache_hits;
    out.merged.cache_misses += run.cache_misses;
    out.merged.breakdown.device_seconds = std::max(
        out.merged.breakdown.device_seconds, run.breakdown.device_seconds);
    out.merged.breakdown.bus_seconds =
        std::max(out.merged.breakdown.bus_seconds, run.breakdown.bus_seconds);
    host_seconds = std::max(host_seconds, run.breakdown.host_seconds);
    out.merged.breakdown.host_cpu_seconds += run.breakdown.host_cpu_seconds;
  }
  out.merged.result = MergeExactResults(shape, results);
  out.merged.breakdown.host_seconds = host_seconds + wall.Seconds();
  return out;
}

}  // namespace wastenot::core
