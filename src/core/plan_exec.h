// Plan executors: one PhysicalPlan, three execution modes.
//
// Each executor first tries PlanToSpec: a plan that lowers to a single-join
// QuerySpec dispatches onto the legacy engine body (detail::Execute*Legacy),
// which keeps results *and* error statuses bit-identical to the pre-plan
// engines — the 16-seed identity fuzz in tests/core/plan_identity_test.cpp
// pins exactly this. Genuinely multi-join plans (second FkJoinNode, theta
// semi-joins, filters or group keys beyond hop 0) run the general executors
// in this translation unit:
//
//   A&R general path: hop-0 approximate selections on the device, exact
//   per-hop oid resolution through fully-resident FK digits (so error never
//   compounds through joins), relaxed dimension filters and theta hull
//   tests over gathered digits, digit-tuple pre-grouping, interval
//   aggregation with certainty/membership gates — then one host refinement
//   pass over the surviving candidates that recomputes everything exactly.
//
//   Classic general path: the same exact evaluation, over the base columns,
//   starting from all fact rows.
//
//   Streaming general path: the classic result, with the raw-width pins,
//   kernel charges and result download a streaming system would pay.
//
// The exact evaluation is ONE shared routine, so all three modes agree on
// multi-join results by construction (and with the sharded merge, which
// unions by exact key tuple).

#ifndef WASTENOT_CORE_PLAN_EXEC_H_
#define WASTENOT_CORE_PLAN_EXEC_H_

#include <map>
#include <string>

#include "bwd/bwd_table.h"
#include "columnstore/database.h"
#include "core/ar_engine.h"
#include "core/classic_engine.h"
#include "core/plan.h"
#include "core/streaming_engine.h"
#include "device/residency_cache.h"
#include "util/status.h"

namespace wastenot::core {

/// Decomposed side tables a plan executes against, by table name: every
/// FkJoinNode dimension and every ThetaJoinNode right side. The scanned
/// fact table is passed separately.
using BwdTableMap = std::map<std::string, const bwd::BwdTable*>;

/// Executes `plan` with the A&R engine (Phase-A approximate plan on the
/// device first, Phase-R host refinement after). Single-join plans are
/// bit-identical to ExecuteAr on the equivalent QuerySpec. In the general
/// path min/max aggregates are Unsupported and ArOptions::num_threads has
/// no effect (refinement runs serially); results remain deterministic.
///
/// With options.delta set, the unabsorbed fact rows are evaluated exactly
/// host-side and merged in: the result is bit-identical to executing
/// against a base table that already absorbed them, and the approximate
/// answer stays sound (bounds contain the merged exact result). Plans
/// whose FK-join dimension or theta right side is the scanned table itself
/// are Unsupported with a delta (the delta rows would have to appear on
/// the right side too); delta FK values out of the dimension's row range
/// are InvalidArgument.
StatusOr<ArExecution> ExecutePlanAr(const PhysicalPlan& plan,
                                    const bwd::BwdTable& fact,
                                    const BwdTableMap& dims,
                                    device::Device* dev,
                                    const ArOptions& options = {});

/// Executes `plan` with the classic CPU engine over base columns.
StatusOr<QueryResult> ExecutePlanClassic(const PhysicalPlan& plan,
                                         const cs::Database& db,
                                         const ClassicOptions& options = {});

/// Executes `plan` in streaming mode (exact result, raw-width charges,
/// inputs pinned into `cache`). `delta` unions unabsorbed fact rows into
/// the exact result host-side (see ExecutePlanAr).
StatusOr<StreamingExecution> ExecutePlanStreaming(
    const PhysicalPlan& plan, const cs::Database& db, device::Device* dev,
    device::ResidencyCache* cache,
    const storage::DeltaBatch* delta = nullptr);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_PLAN_EXEC_H_
