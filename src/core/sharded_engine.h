// Sharded A&R / streaming execution over a DeviceGroup.
//
// The paper's Phase-A/Phase-R split fans out naturally over horizontal
// partitions: approximate scans are embarrassingly parallel across shards,
// and refinement is shard-local (a shard's candidates reference only its
// own residuals). ExecuteArSharded dispatches one full per-shard A&R
// execution per target shard over the shared host pool — each shard's
// device kernels run on that device's own worker pool, its Phase R runs
// serially on the dispatching worker — and merges the per-shard results.
//
// Merge discipline (DESIGN.md §6): per-shard exact results merge by exact
// group-key tuple. Count/sum/avg-sum aggregates are integer additions
// (commutative and associative, so shard order cannot matter); min/max
// combine the per-shard extrema of shards that selected rows; group counts
// and selected_rows add; the merged table is re-sorted into the canonical
// key order. Because every shard plans the identical DecompositionSpec
// (partition invariant 2), each per-shard execution is itself bit-identical
// to running on that slice single-device, and the merge is bit-identical to
// the unpartitioned run — property-tested across the engine-fuzz sweep.
//
// Approximate answers merge soundly (interval addition for counts/sums,
// hulls for avgs and extrema), so the sharded Phase-A answer keeps the
// strict-error-bound contract even though its intervals need not equal the
// single-device ones.
//
// Data-local scheduling: predicates on the partition key prune shards whose
// key hull cannot intersect them (partition invariant 3) — exactness is
// unaffected because a pruned shard provably contributes zero refined rows.

#ifndef WASTENOT_CORE_SHARDED_ENGINE_H_
#define WASTENOT_CORE_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "bwd/partition.h"
#include "columnstore/database.h"
#include "core/ar_engine.h"
#include "core/plan_exec.h"
#include "core/streaming_engine.h"
#include "device/device_group.h"
#include "util/status.h"

namespace wastenot::core {

/// Options for a sharded A&R execution.
struct ShardedArOptions {
  /// Per-shard engine options. num_threads here is reinterpreted as the
  /// *shard fan-out* width (0 = the shared default pool, 1 = serial shard
  /// loop); inside each shard Phase R runs serially whenever the fan-out
  /// is parallel, so pool workers never wait on their own pool.
  ArOptions ar;
  /// Prune shards whose key hull misses the query's partition-key
  /// predicate (exactness-preserving; see TargetShards).
  bool data_local_pruning = true;
  /// Progressive serving hook, the sharded analogue of
  /// ArOptions::on_approximate: invoked exactly once with the *merged*
  /// approximate answer as soon as the last target shard finishes Phase A —
  /// typically while other shards (and this one) are still refining. Runs
  /// on whichever fan-out worker completed last; must not throw. Not
  /// invoked when any shard fails before its Phase A completes (the
  /// execution then returns that shard's error). The per-shard
  /// ArOptions::on_approximate slot is owned by this mechanism and must be
  /// left empty.
  std::function<void(const ApproximateAnswer&)> on_approximate;
};

/// A merged sharded execution plus its per-shard attribution.
struct ShardedArExecution {
  /// Merged exact result, sound merged approximate answer, and the
  /// group-level breakdown: device/bus seconds are the *max* over shards
  /// (parallel devices overlap), host_seconds is the measured fan-out
  /// wall time, host_cpu_seconds sums the per-shard refinement work.
  ArExecution merged;
  /// Shards actually executed, ascending (after data-local pruning).
  std::vector<uint32_t> executed_shards;
  /// Per-shard breakdowns, aligned with executed_shards.
  std::vector<ExecutionBreakdown> shard_breakdowns;
};

/// Executes `query` shard-parallel over `fact`'s shards on `group`.
/// `dim_replicas` (may be null for join-free queries) holds one dimension
/// replica per group device, as built by bwd::ReplicatePerDevice; shard s
/// joins against the replica on its own device (s % group size).
///
/// The merged QueryResult is bit-identical to single-device ExecuteAr on
/// the unpartitioned table, for any shard count, partition kind, pruning
/// setting and fan-out width.
StatusOr<ShardedArExecution> ExecuteArSharded(
    const QuerySpec& query, const bwd::ShardedBwdTable& fact,
    const std::vector<bwd::BwdTable>* dim_replicas, device::DeviceGroup* group,
    const ShardedArOptions& options = {});

/// Plan analogue: executes `plan` shard-parallel. `dim_maps` (may be null
/// for scan-only plans) holds one decomposed-table map per group device —
/// every FkJoinNode dimension and ThetaJoinNode right side the plan
/// references, replicated per device; shard s resolves against the map of
/// its own device (s % group size). ExecuteArSharded lowers onto this with
/// singleton maps, so single-join specs stay bit-identical; the merge
/// discipline (exact key-tuple union, sound interval merge) is shared.
StatusOr<ShardedArExecution> ExecutePlanArSharded(
    const PhysicalPlan& plan, const bwd::ShardedBwdTable& fact,
    const std::vector<BwdTableMap>* dim_maps, device::DeviceGroup* group,
    const ShardedArOptions& options = {});

/// A merged sharded streaming execution.
struct ShardedStreamingExecution {
  /// Merged exact result; transfer bytes and cache hit/miss counters sum
  /// across shards, device/bus seconds are the max over shards.
  StreamingExecution merged;
  std::vector<uint32_t> executed_shards;
};

/// Streaming analogue: shard s executes against shard_dbs[s] on group
/// device s % size, pinning inputs into that device's residency cache
/// (group->cache). `partition` (may be null) enables data-local pruning;
/// it must describe the same sharding shard_dbs was built from.
/// `fan_out_threads` follows the ShardedArOptions convention.
StatusOr<ShardedStreamingExecution> ExecuteStreamingSharded(
    const QuerySpec& query, const std::vector<cs::Database>& shard_dbs,
    device::DeviceGroup* group, const bwd::TablePartition* partition = nullptr,
    unsigned fan_out_threads = 0);

/// Plan analogue of ExecuteStreamingSharded (same conventions).
StatusOr<ShardedStreamingExecution> ExecutePlanStreamingSharded(
    const PhysicalPlan& plan, const std::vector<cs::Database>& shard_dbs,
    device::DeviceGroup* group, const bwd::TablePartition* partition = nullptr,
    unsigned fan_out_threads = 0);

/// The conjunction of `query`'s predicates on `key_column` as one range
/// (full-domain when the query has none) — what data-local pruning feeds
/// to bwd::TargetShards. Exposed for the server's shard-aware dispatch.
cs::RangePred PartitionKeyRange(const QuerySpec& query,
                                const std::string& key_column);

/// Plan overload: only hop-0 filters (on the scanned, partitioned table)
/// participate; dimension filters cannot prune fact shards.
cs::RangePred PartitionKeyRange(const PhysicalPlan& plan,
                                const std::string& key_column);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_SHARDED_ENGINE_H_
