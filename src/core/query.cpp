#include "core/query.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace wastenot::core {

void QueryResult::SortByKeys() {
  const uint64_t n = group_keys.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return group_keys[a] < group_keys[b];
  });
  auto permute = [&](auto& v) {
    using V = std::remove_reference_t<decltype(v)>;
    V out;
    out.reserve(v.size());
    for (uint32_t idx : order) out.push_back(std::move(v[idx]));
    v = std::move(out);
  };
  permute(group_keys);
  permute(agg_values);
  if (!group_counts.empty()) permute(group_counts);
}

std::string QueryResult::ToString(const std::vector<Aggregate>& aggs) const {
  std::ostringstream os;
  // Consistency check: rendering with the wrong aggregate specs would
  // silently divide by the wrong display scales. Flag the mismatch and
  // fall back to raw integer values for the unmatched columns.
  if (aggs.size() != agg_labels.size()) {
    os << "!! schema mismatch: result carries " << agg_labels.size()
       << " aggregate label(s) but " << aggs.size()
       << " spec(s) were given; unmatched columns render unscaled\n";
  }
  for (const auto& k : key_names) os << k << "\t";
  for (const auto& a : agg_labels) os << a << "\t";
  os << "\n";
  for (uint64_t g = 0; g < group_keys.size(); ++g) {
    for (int64_t k : group_keys[g]) os << k << "\t";
    for (uint64_t a = 0; a < agg_values[g].size(); ++a) {
      double v = static_cast<double>(agg_values[g][a]);
      if (a < aggs.size()) {
        const Aggregate& spec = aggs[a];
        if (spec.func == AggFunc::kAvg && !group_counts.empty() &&
            group_counts[g] > 0) {
          v /= static_cast<double>(group_counts[g]);
        }
        v /= spec.display_scale;
      }
      os << v << "\t";
    }
    os << "\n";
  }
  return os.str();
}

bool ApproximateAnswer::exact() const {
  for (const auto& group : agg_bounds) {
    for (const auto& b : group) {
      if (!b.IsExact()) return false;
    }
  }
  for (const auto& group : key_bounds) {
    for (const auto& b : group) {
      if (!b.IsExact()) return false;
    }
  }
  return row_count.IsExact();
}

std::string ApproximateAnswer::ToString(
    const std::vector<std::string>& key_names,
    const std::vector<Aggregate>& aggs) const {
  std::ostringstream os;
  os << "approximate answer (" << num_groups() << " groups, rows in "
     << row_count.ToString() << ")\n";
  for (uint64_t g = 0; g < key_bounds.size(); ++g) {
    os << "  ";
    for (uint64_t k = 0; k < key_bounds[g].size(); ++k) {
      os << key_names[k] << "=" << key_bounds[g][k].ToString() << " ";
    }
    for (uint64_t a = 0; a < agg_bounds[g].size(); ++a) {
      os << aggs[a].label << "=" << agg_bounds[g][a].ToString() << " ";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace wastenot::core
