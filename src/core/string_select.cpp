#include "core/string_select.h"

#include <algorithm>
#include <cassert>

namespace wastenot::core {

int64_t StringPrefixCode(std::string_view s, uint32_t k) {
  assert(k >= 1 && k <= 7);
  uint64_t code = 0;
  for (uint32_t i = 0; i < k; ++i) {
    const uint8_t byte =
        i < s.size() ? static_cast<uint8_t>(s[i]) : uint8_t{0};
    code = (code << 8) | byte;
  }
  return static_cast<int64_t>(code);
}

cs::RangePred StringPrefixRange(std::string_view prefix, uint32_t k) {
  const uint32_t m = std::min<uint32_t>(static_cast<uint32_t>(prefix.size()), k);
  uint64_t lo = 0, hi = 0;
  for (uint32_t i = 0; i < k; ++i) {
    const uint8_t lo_byte =
        i < m ? static_cast<uint8_t>(prefix[i]) : uint8_t{0};
    const uint8_t hi_byte =
        i < m ? static_cast<uint8_t>(prefix[i]) : uint8_t{0xFF};
    lo = (lo << 8) | lo_byte;
    hi = (hi << 8) | hi_byte;
  }
  return cs::RangePred{static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

cs::Column BuildPrefixCodeColumn(std::span<const std::string> strings,
                                 uint32_t k) {
  cs::Column col(cs::ValueType::kInt64, strings.size());
  auto out = col.MutableI64();
  for (uint64_t i = 0; i < strings.size(); ++i) {
    out[i] = StringPrefixCode(strings[i], k);
  }
  col.ComputeStats();
  return col;
}

StringApproxSelection StringPrefixSelectApproximate(
    const bwd::BwdColumn& prefix_codes, std::string_view prefix, uint32_t k,
    device::Device* dev) {
  StringApproxSelection out;
  const cs::RangePred range = StringPrefixRange(prefix, k);
  out.inner = SelectApproximate(prefix_codes, range, dev);
  // Exact when the pattern fits within the coded prefix (the code range
  // then characterizes the predicate precisely) and every candidate is
  // certain w.r.t. the code decomposition.
  out.exact = prefix.size() <= k &&
              out.inner.num_certain == out.inner.cands.size();
  return out;
}

cs::OidVec StringPrefixSelectRefine(const StringApproxSelection& approx,
                                    std::span<const std::string> strings,
                                    std::string_view prefix) {
  if (approx.exact) return approx.inner.cands.ids;
  cs::OidVec out;
  out.reserve(approx.inner.cands.size());
  for (cs::oid_t id : approx.inner.cands.ids) {
    const std::string& s = strings[id];
    if (s.size() >= prefix.size() &&
        std::equal(prefix.begin(), prefix.end(), s.begin())) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace wastenot::core
