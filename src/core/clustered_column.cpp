#include "core/clustered_column.h"

#include <algorithm>
#include <bit>

#include "bwd/packed_codec.h"
#include "util/bits.h"

namespace wastenot::core {

StatusOr<ClusteredBwdColumn> ClusteredBwdColumn::Cluster(
    const cs::Column& column, uint32_t device_bits, device::Device* dev,
    bwd::Compression compression) {
  if (dev == nullptr) {
    return Status::InvalidArgument("Cluster requires a device");
  }
  int64_t min_value = 0, max_value = 0;
  if (column.has_stats()) {
    min_value = column.min_value();
    max_value = column.max_value();
  } else if (column.size() > 0) {
    min_value = max_value = column.Get(0);
    for (uint64_t i = 1; i < column.size(); ++i) {
      min_value = std::min(min_value, column.Get(i));
      max_value = std::max(max_value, column.Get(i));
    }
  }
  const uint32_t type_bits =
      column.type() == cs::ValueType::kInt32 ? 32u : 64u;

  ClusteredBwdColumn out;
  out.spec_ = bwd::DecompositionSpec::Plan(min_value, max_value, type_bits,
                                      device_bits, compression);
  out.count_ = column.size();

  const uint32_t approx_bits = out.spec_.approximation_bits();
  if (approx_bits > 28) {
    return Status::Unsupported(
        "radix clustering needs a bounded digit domain (approximation of " +
        std::to_string(approx_bits) +
        " bits would make the offsets table larger than the data)");
  }
  out.num_digits_ = uint64_t{1} << approx_bits;

  // Counting sort by digit: histogram, prefix sum, stable scatter.
  std::vector<uint64_t> offsets(out.num_digits_ + 1, 0);
  for (uint64_t i = 0; i < out.count_; ++i) {
    ++offsets[out.spec_.ApproxDigit(column.Get(i)) + 1];
  }
  for (uint64_t d = 1; d <= out.num_digits_; ++d) {
    offsets[d] += offsets[d - 1];
  }
  out.row_map_.resize(out.count_);
  out.residual_ = bwd::PackedVector(out.spec_.residual_bits, out.count_);
  {
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (uint64_t i = 0; i < out.count_; ++i) {
      const int64_t v = column.Get(i);
      const uint64_t pos = cursor[out.spec_.ApproxDigit(v)]++;
      out.row_map_[pos] = static_cast<cs::oid_t>(i);
      out.residual_.Set(pos, out.spec_.ResidualDigit(v));
    }
  }

  WN_ASSIGN_OR_RETURN(out.offsets_device_,
                      dev->Upload(offsets.data(),
                                  offsets.size() * sizeof(uint64_t)));
  return out;
}

int64_t ClusteredBwdColumn::ReconstructAt(uint64_t pos) const {
  // The digit of `pos` is the cluster it falls into: binary search the
  // offsets (upper_bound - 1).
  const uint64_t* offsets = offsets_device_.as<uint64_t>();
  const uint64_t digit = static_cast<uint64_t>(
      std::upper_bound(offsets, offsets + num_digits_ + 1, pos) - offsets - 1);
  return spec_.Reassemble(digit, residual_.Get(pos));
}

ClusteredBwdColumn::ClusteredSelection ClusteredBwdColumn::SelectApproximate(
    const cs::RangePred& pred, device::Device* dev) const {
  ClusteredSelection sel;
  const RelaxedPred relaxed = RelaxPredicate(spec_, pred);
  device::KernelSignature sig;
  sig.op = "uselect_clustered";
  sig.value_bits = spec_.value_bits;
  sig.packed_bits = spec_.approximation_bits();
  sig.prefix_base = spec_.prefix_base;
  if (relaxed.none) {
    dev->ChargeKernel(sig, {.elements = 1, .bytes_read = 64});
    return sel;
  }
  const uint64_t* offsets = offsets_device_.as<uint64_t>();
  sel.begin = offsets[relaxed.lo_digit];
  sel.end = offsets[std::min(relaxed.hi_digit + 1, num_digits_)];
  // Interior clusters are certain; additionally the certain digit range
  // (whole clusters whose interval lies inside the predicate) is known.
  if (relaxed.certain_lo <= relaxed.certain_hi) {
    sel.certain_begin = offsets[std::min(relaxed.certain_lo, num_digits_)];
    sel.certain_end = offsets[std::min(relaxed.certain_hi + 1, num_digits_)];
  } else {
    sel.certain_begin = sel.certain_end = sel.begin;
  }
  // Two binary searches over the offsets table: logarithmic device work
  // (the clustered layout's headline win over the packed scan).
  dev->ChargeKernel(
      sig, {.elements = 2,
            .bytes_read = 2 * bits::BitWidth(num_digits_) * sizeof(uint64_t),
            .bytes_written = 2 * sizeof(uint64_t),
            .ops = 2 * bits::BitWidth(num_digits_)});
  return sel;
}

cs::OidVec ClusteredBwdColumn::SelectRefine(const ClusteredSelection& sel,
                                            const cs::RangePred& pred,
                                            const MorselContext& ctx) const {
  const uint64_t* offsets = offsets_device_.as<uint64_t>();
  const bwd::PackedView res = residual_.view();
  const uint64_t morsel =
      AlignMorsel(ctx.morsel_elems != 0
                      ? ctx.morsel_elems
                      : MorselElems(spec_.residual_bits + 32));

  // Residual-checked emission over positions [begin, end): all positions
  // of a cluster share its digit, so walk whole digit runs — one offsets
  // lookup per cluster instead of a binary search per position — and
  // block-decode each run's residuals through the bulk codec.
  auto emit_checked = [&](uint64_t begin, uint64_t end, cs::OidVec* frag) {
    uint64_t digit = static_cast<uint64_t>(
        std::upper_bound(offsets, offsets + num_digits_ + 1, begin) - offsets -
        1);
    uint64_t res_digits[bwd::kPackedBlockElems];
    for (uint64_t pos = begin; pos < end;) {
      while (offsets[digit + 1] <= pos) ++digit;  // skip emptied clusters
      const uint64_t run_end = std::min(end, offsets[digit + 1]);
      for (uint64_t b0 = pos; b0 < run_end; b0 += bwd::kPackedBlockElems) {
        const uint32_t lanes = static_cast<uint32_t>(
            std::min(run_end - b0, bwd::kPackedBlockElems));
        bwd::UnpackRange(res, b0, lanes, res_digits);
        // Branch-free per-lane flags, then one mask-compressed append of
        // the surviving row-map entries (SIMD compress-store under the
        // hood) instead of a branchy per-lane push_back.
        uint64_t ok = 0;
        for (uint32_t j = 0; j < lanes; ++j) {
          ok |= static_cast<uint64_t>(
                    pred.Contains(spec_.Reassemble(digit, res_digits[j])))
                << j;
        }
        if (ok == 0) continue;
        const size_t old = frag->size();
        frag->resize(old + static_cast<uint32_t>(std::popcount(ok)));
        bwd::CompressLanes(ok, row_map_.data() + b0, frag->data() + old);
      }
      pos = run_end;
    }
  };

  // A checked region, morselized: each morsel walks its sub-range into a
  // private fragment; concatenation in morsel order preserves clustered
  // position order, so the output is bit-identical to a serial walk.
  auto checked_region = [&](uint64_t begin,
                            uint64_t end) -> std::vector<cs::OidVec> {
    const uint64_t len = end > begin ? end - begin : 0;
    std::vector<cs::OidVec> fragments(bits::CeilDiv(len, morsel));
    ParallelForBlocks(ctx, len, morsel,
                      [&](uint64_t b, uint64_t e, unsigned) {
                        emit_checked(begin + b, begin + e,
                                     &fragments[b / morsel]);
                      });
    return fragments;
  };

  // Leading and trailing boundary clusters: residual check required.
  const std::vector<cs::OidVec> lead =
      checked_region(sel.begin, sel.certain_begin);
  const std::vector<cs::OidVec> trail =
      checked_region(std::max(sel.certain_end, sel.begin), sel.end);

  uint64_t lead_total = 0, trail_total = 0;
  for (const auto& f : lead) lead_total += f.size();
  for (const auto& f : trail) trail_total += f.size();
  const uint64_t mid_len = sel.certain_end > sel.certain_begin
                               ? sel.certain_end - sel.certain_begin
                               : 0;

  // Assemble with exact output sizing: [lead fragments | certain interior
  // row-map copy | trail fragments], the interior copied in parallel
  // morsels (sequential access — the locality the clustering buys).
  cs::OidVec out(lead_total + mid_len + trail_total);
  uint64_t cursor = 0;
  for (const auto& f : lead) {
    std::copy(f.begin(), f.end(), out.begin() + cursor);
    cursor += f.size();
  }
  ParallelForBlocks(ctx, mid_len, morsel,
                    [&](uint64_t b, uint64_t e, unsigned) {
                      std::copy(row_map_.begin() + sel.certain_begin + b,
                                row_map_.begin() + sel.certain_begin + e,
                                out.begin() + lead_total + b);
                    });
  cursor += mid_len;
  for (const auto& f : trail) {
    std::copy(f.begin(), f.end(), out.begin() + cursor);
    cursor += f.size();
  }
  return out;
}

}  // namespace wastenot::core
