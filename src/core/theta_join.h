// A&R theta join (paper §IV-D).
//
// Theta joins are "generally implemented as nested loop joins which are
// bandwidth intensive, often subject to computation intensive comparison
// functions and trivial to massively parallelize because they do not
// employ intermediate structures that have to be locked" — the best-case
// operator for a GPU. The approximation runs the nested loop over the
// packed approximations with a relaxed condition, producing candidate
// pairs plus certainty flags; the refinement reconstructs exact values and
// re-evaluates the precise condition. Only one side's order survives the
// approximation, so one refinement side uses the translucent machinery
// (implicitly, by pair order) and the other is re-fetched by id.

#ifndef WASTENOT_CORE_THETA_JOIN_H_
#define WASTENOT_CORE_THETA_JOIN_H_

#include <vector>

#include "bwd/bwd_column.h"
#include "core/candidates.h"
#include "device/device.h"

namespace wastenot::core {

/// Supported theta-join conditions between left value a and right value b.
enum class ThetaOp : uint8_t {
  kLess,        ///< a <  b
  kLessEqual,   ///< a <= b
  kBandWithin,  ///< |a - b| <= band
};

/// Candidate pair list of an approximate theta join.
struct PairCandidates {
  cs::OidVec left_ids;
  cs::OidVec right_ids;
  std::vector<uint8_t> certain;  ///< pair certainly satisfies the condition
  uint64_t num_certain = 0;

  uint64_t size() const { return left_ids.size(); }
};

/// Nested-loop approximate theta join on the device (O(|L|·|R|) work; use
/// on dimension-scale inputs). Superset invariant: every exactly-matching
/// pair is produced.
PairCandidates ThetaJoinApproximate(const bwd::BwdColumn& left,
                                    const bwd::BwdColumn& right, ThetaOp op,
                                    int64_t band, device::Device* dev);

/// Exact pairs after CPU refinement of the candidates.
struct JoinedPairs {
  cs::OidVec left_ids;
  cs::OidVec right_ids;
  uint64_t size() const { return left_ids.size(); }
};
JoinedPairs ThetaJoinRefine(const bwd::BwdColumn& left,
                            const bwd::BwdColumn& right, ThetaOp op,
                            int64_t band, const PairCandidates& cands);

/// Reference CPU nested loop on exact values (baseline & test oracle).
JoinedPairs ThetaJoinExact(const cs::Column& left, const cs::Column& right,
                           ThetaOp op, int64_t band);

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_THETA_JOIN_H_
