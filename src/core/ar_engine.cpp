#include "core/ar_engine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>

#include "core/aggregate.h"
#include "core/arithmetic.h"
#include "core/group.h"
#include "core/project.h"
#include "core/select.h"
#include "core/translucent_join.h"
#include "util/bits.h"
#include "util/timer.h"

namespace wastenot::core {

namespace {

/// Renders the physical plan as paired approximate/refine operators
/// (the textual analogue of the paper's Fig 7 MAL-plan graph).
class PlanWriter {
 public:
  void Approx(const std::string& op, const std::string& detail) {
    lines_.push_back("  [device] bwd." + op + "approximate(" + detail + ")");
  }
  void Refine(const std::string& op, const std::string& detail) {
    lines_.push_back("  [host]   bwd." + op + "refine(" + detail + ")");
  }
  void Note(const std::string& note) { lines_.push_back("  # " + note); }
  void Phase(const std::string& name) { lines_.push_back(name + ":"); }

  std::string Render() const {
    std::string out;
    for (const auto& l : lines_) {
      out += l;
      out += "\n";
    }
    return out;
  }

 private:
  std::vector<std::string> lines_;
};

/// Fraction of the digit domain a relaxed predicate covers — the
/// rule-based optimizer's selectivity estimate (paper §III-A: push the
/// most selective approximate selections down).
double EstimateSelectivity(const bwd::DecompositionSpec& spec,
                           const cs::RangePred& pred) {
  const RelaxedPred relaxed = RelaxPredicate(spec, pred);
  if (relaxed.none) return 0.0;
  const uint64_t max_digit =
      bits::LowMask(spec.value_bits) >> spec.residual_bits;
  const double width =
      static_cast<double>(relaxed.hi_digit - relaxed.lo_digit) + 1.0;
  return width / (static_cast<double>(max_digit) + 1.0);
}

/// Compacts `v` to the rows named by `keep` (new[i] = old[keep[i]]).
template <typename T>
void CompactBy(const cs::OidVec& keep, std::vector<T>* v) {
  std::vector<T> out(keep.size());
  for (uint64_t i = 0; i < keep.size(); ++i) out[i] = (*v)[keep[i]];
  *v = std::move(out);
}

/// A dimension predicate evaluated through the fk column on the device:
/// per fact candidate, a 0/1 indicator interval (certain, possible).
struct DimIndicator {
  BoundedValues bounds;  ///< aligned with the candidate list
  bool exact = false;
};

DimIndicator BuildDimIndicator(const bwd::BwdColumn& fk,
                               const bwd::BwdColumn& dim_attr,
                               const cs::RangePred& range, int64_t fk_base,
                               const Candidates& cands,
                               device::Device* dev) {
  const bwd::DecompositionSpec& aspec = dim_attr.spec();
  const bwd::DecompositionSpec& fspec = fk.spec();
  const RelaxedPred relaxed = RelaxPredicate(aspec, range);
  const bwd::PackedView fk_view = fk.approximation();
  const bwd::PackedView attr_view = dim_attr.approximation();
  const uint64_t n = cands.size();

  DimIndicator out;
  out.exact = aspec.fully_resident();
  out.bounds.lo.resize(n);
  out.bounds.hi.resize(n);
  const cs::oid_t* ids = cands.ids.data();

  device::KernelSignature sig;
  sig.op = "semijoin_approximate";
  sig.value_bits = aspec.value_bits;
  sig.packed_bits = aspec.approximation_bits();
  sig.prefix_base = aspec.prefix_base;
  const uint64_t attr_bytes =
      std::max<uint64_t>(bits::CeilDiv(aspec.approximation_bits(), 8), 1);
  const uint64_t fk_bytes =
      std::max<uint64_t>(bits::CeilDiv(fspec.approximation_bits(), 8), 1);
  dev->Launch(
      sig,
      {.elements = n,
       .bytes_read = n * (sizeof(cs::oid_t) + fk_bytes + attr_bytes),
       .bytes_written = n * 2,
       .ops = 3 * n},
      [&](uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          const uint64_t dim_oid = static_cast<uint64_t>(
              fspec.Reassemble(fk_view.Get(ids[i]), 0) - fk_base);
          const uint64_t digit = attr_view.Get(dim_oid);
          out.bounds.hi[i] = relaxed.Matches(digit) ? 1 : 0;
          out.bounds.lo[i] = relaxed.Certain(digit) ? 1 : 0;
        }
      });
  return out;
}

/// Wraps a ValueBounds transform for affine min/max handling.
struct AffineView {
  int64_t offset = 0;
  int sign = +1;
  int64_t Apply(int64_t v) const { return sign >= 0 ? offset + v : offset - v; }
  ValueBounds Apply(const ValueBounds& b) const {
    return sign >= 0 ? b.Shift(offset) : b.Negate().Shift(offset);
  }
};

/// Pool selection for ArOptions::num_threads: nullptr = run Phase R
/// serially inline (num_threads == 1, or the hardware has one core);
/// 0 = the process-wide default pool; N > 1 = a shared pool of exactly N
/// workers, created once and reused across executions (the thread-scaling
/// benches re-run queries per size, so respawning per call would dominate).
ThreadPool* PhaseRPool(unsigned num_threads) {
  if (num_threads == 1) return nullptr;
  if (num_threads == 0) {
    ThreadPool& def = ThreadPool::Default();
    return def.num_threads() > 1 ? &def : nullptr;
  }
  static std::mutex mu;
  static std::map<unsigned, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& pool = pools[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return pool.get();
}

}  // namespace

namespace detail {

StatusOr<ArExecution> ExecuteArLegacy(const QuerySpec& query,
                                      const bwd::BwdTable& fact,
                                      const bwd::BwdTable* dim,
                                      device::Device* dev,
                                      const ArOptions& options) {
  // ---------- validation ---------------------------------------------------
  auto require_fact_column =
      [&](const std::string& name) -> const bwd::BwdColumn* {
    return fact.HasColumn(name) ? &fact.column(name) : nullptr;
  };
  for (const auto& p : query.predicates) {
    if (require_fact_column(p.column) == nullptr) {
      return Status::NotFound("predicate column '" + p.column +
                              "' is not decomposed in '" + fact.name() + "'");
    }
  }
  for (const auto& g : query.group_by) {
    if (require_fact_column(g) == nullptr) {
      return Status::NotFound("group column '" + g + "' is not decomposed");
    }
  }
  const bwd::BwdColumn* fk_col = nullptr;
  if (query.join.has_value()) {
    if (dim == nullptr) {
      return Status::InvalidArgument("query joins but no dimension given");
    }
    fk_col = require_fact_column(query.join->fk_column);
    if (fk_col == nullptr) {
      return Status::NotFound("fk column '" + query.join->fk_column +
                              "' is not decomposed");
    }
    if (!fk_col->spec().fully_resident()) {
      return Status::Unsupported(
          "join keys must be fully device-resident (never decomposed)");
    }
  }
  for (const auto& agg : query.aggregates) {
    for (const auto& t : agg.terms) {
      const bool found = t.from_dimension
                             ? (dim != nullptr && dim->HasColumn(t.column))
                             : fact.HasColumn(t.column);
      if (!found) {
        return Status::NotFound("aggregate column '" + t.column +
                                "' is not decomposed");
      }
    }
    if (agg.filter.has_value() &&
        (dim == nullptr || !dim->HasColumn(agg.filter->dim_column))) {
      return Status::NotFound("filter column not decomposed in dimension");
    }
    if ((agg.func == AggFunc::kMin || agg.func == AggFunc::kMax) &&
        (agg.terms.size() != 1 || agg.terms[0].from_dimension ||
         agg.filter.has_value() || !query.group_by.empty())) {
      return Status::Unsupported(
          "min/max supports a single fact-column term, ungrouped, "
          "without filters");
    }
  }

  ArExecution exec;
  PlanWriter plan;
  // Per-query clock attribution: every simulated charge this thread makes
  // below lands in this scope as well as the global clock, so concurrent
  // executions on one shared device each get their own breakdown
  // (snapshot deltas would charge them each other's kernels).
  device::SimClock::QueryScope query_clock(&dev->clock());
  const uint64_t num_preds = query.predicates.size();

  // ======================== Phase A: approximate ===========================
  plan.Phase("approximate subplan (device)");

  // --- rule-based optimizer: approximate-selection pushdown ordering ------
  std::vector<uint32_t> pred_order(num_preds);
  std::iota(pred_order.begin(), pred_order.end(), 0);
  if (options.pushdown) {
    std::vector<double> sel(num_preds);
    for (uint32_t p = 0; p < num_preds; ++p) {
      sel[p] = EstimateSelectivity(fact.column(query.predicates[p].column).spec(),
                                   query.predicates[p].range);
    }
    std::stable_sort(pred_order.begin(), pred_order.end(),
                     [&](uint32_t a, uint32_t b) { return sel[a] < sel[b]; });
  }

  // --- approximate selection chain ----------------------------------------
  Candidates cands;
  std::vector<std::optional<ApproxValues>> pred_values(num_preds);
  std::vector<uint8_t> certain;
  if (num_preds == 0) {
    cands.ids.resize(fact.num_rows());
    std::iota(cands.ids.begin(), cands.ids.end(), 0);
    cands.sorted = true;
    certain.assign(fact.num_rows(), 1);
  } else {
    bool first = true;
    std::vector<uint32_t> done;
    for (uint32_t idx : pred_order) {
      const Predicate& pred = query.predicates[idx];
      const bwd::BwdColumn& col = fact.column(pred.column);
      plan.Approx("uselect", pred.column + (first ? "" : ", candidates"));
      if (first) {
        ApproxSelection s = SelectApproximate(col, pred.range, dev);
        cands = std::move(s.cands);
        pred_values[idx] = std::move(s.values);
        certain = std::move(s.certain);
        first = false;
      } else {
        ApproxSelection s = SelectApproximateOn(col, pred.range, cands, dev);
        for (uint32_t d : done) {
          CompactBy(s.kept_positions, &pred_values[d]->lower);
        }
        CompactBy(s.kept_positions, &certain);
        for (uint64_t i = 0; i < certain.size(); ++i) {
          certain[i] = certain[i] & s.certain[i];
        }
        cands = std::move(s.cands);
        pred_values[idx] = std::move(s.values);
      }
      done.push_back(idx);
    }
  }
  uint64_t num_certain = 0;
  for (uint8_t c : certain) num_certain += c;
  exec.num_candidates = cands.size();

  // --- dimension indicators (semijoin approximations) ---------------------
  // Keyed by (column, range) so distinct filters on one column coexist.
  auto indicator_key = [](const CaseFilter& f) {
    return f.dim_column + "/" + std::to_string(f.range.lo) + ":" +
           std::to_string(f.range.hi);
  };
  std::map<std::string, DimIndicator> indicators;
  std::map<std::string, CaseFilter> indicator_filters;
  for (const auto& agg : query.aggregates) {
    if (!agg.filter.has_value()) continue;
    const std::string key = indicator_key(*agg.filter);
    if (indicators.count(key) != 0) continue;
    plan.Approx("semijoin",
                query.join->fk_column + " -> " + agg.filter->dim_column);
    indicators.emplace(key, BuildDimIndicator(*fk_col,
                                              dim->column(agg.filter->dim_column),
                                              agg.filter->range,
                                              query.join->fk_base, cands, dev));
    indicator_filters.emplace(key, *agg.filter);
  }

  // --- approximate pre-grouping --------------------------------------------
  const bool grouped = !query.group_by.empty();
  ApproxGrouping pre;
  if (grouped) {
    for (uint64_t g = 0; g < query.group_by.size(); ++g) {
      const bwd::BwdColumn& col = fact.column(query.group_by[g]);
      plan.Approx("group", query.group_by[g]);
      pre = (g == 0) ? GroupApproximate(col, &cands, dev)
                     : GroupApproximateSub(col, &cands, pre, dev);
    }
  } else {
    pre.group_ids.assign(cands.size(), 0);
    pre.num_groups = 1;
    pre.first_positions = {0};
  }
  const uint64_t num_pre_groups = pre.num_groups;

  // Per-group candidate/certain counts (count bounds + avg denominators).
  std::vector<int64_t> group_count_hi(num_pre_groups, 0);
  std::vector<int64_t> group_count_lo(num_pre_groups, 0);
  for (uint64_t i = 0; i < cands.size(); ++i) {
    ++group_count_hi[pre.group_ids[i]];
    group_count_lo[pre.group_ids[i]] += certain[i];
  }

  // Refinement-need flags (used by the aggregation fast paths below and
  // by the phase boundary).
  const bool select_needs_refine = [&] {
    for (const auto& p : query.predicates) {
      if (!fact.column(p.column).spec().fully_resident()) return true;
    }
    return false;
  }();
  bool group_has_residual = false;
  for (const auto& g : query.group_by) {
    group_has_residual |= !fact.column(g).spec().fully_resident();
  }
  const bool group_needs_refine = select_needs_refine || group_has_residual;

  // --- approximate aggregation ---------------------------------------------
  struct AggState {
    std::vector<ApproxValues> term_values;     // aligned with cands
    std::vector<ValueBounds> group_bounds;     // per pre-group (sums scaled)
    std::optional<ExtremumCandidates> extremum;
    const DimIndicator* indicator = nullptr;
    bool exact_from_approx = true;
    /// Delta-refinement support: per-pre-group sums of the *exact* per-row
    /// expression over every candidate, fused into the same device pass as
    /// the bounds (populated only when the expression is exact per row and
    /// the only error is candidate membership).
    std::vector<int64_t> exact_candidate_sums;
  };
  std::vector<AggState> agg_states(query.aggregates.size());

  for (uint64_t a = 0; a < query.aggregates.size(); ++a) {
    const Aggregate& agg = query.aggregates[a];
    AggState& state = agg_states[a];
    if (agg.filter.has_value()) {
      state.indicator = &indicators.at(indicator_key(*agg.filter));
    }

    switch (agg.func) {
      case AggFunc::kCount: {
        plan.Approx("count", agg.label);
        state.group_bounds.resize(num_pre_groups);
        for (uint64_t g = 0; g < num_pre_groups; ++g) {
          state.group_bounds[g] =
              ValueBounds{group_count_lo[g], group_count_hi[g]};
        }
        if (state.indicator != nullptr) {
          // Filtered count: recount with indicator bounds.
          std::fill(state.group_bounds.begin(), state.group_bounds.end(),
                    ValueBounds{0, 0});
          for (uint64_t i = 0; i < cands.size(); ++i) {
            const uint32_t g = pre.group_ids[i];
            state.group_bounds[g].lo +=
                (certain[i] && state.indicator->bounds.lo[i]) ? 1 : 0;
            state.group_bounds[g].hi += state.indicator->bounds.hi[i] ? 1 : 0;
          }
        }
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        const Term& t = agg.terms[0];
        const bwd::BwdColumn& col = fact.column(t.column);
        const AffineView affine{t.offset, t.sign};
        const bool want_max = (agg.func == AggFunc::kMax) == (t.sign >= 0);
        plan.Approx(agg.func == AggFunc::kMin ? "min" : "max", t.column);
        state.extremum =
            want_max ? MaxApproximate(col, cands, certain, dev)
                     : MinApproximate(col, cands, certain, dev);
        state.group_bounds.assign(1, affine.Apply(state.extremum->bounds));
        state.exact_from_approx = false;  // extrema always verify on CPU
        break;
      }
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        plan.Approx("sum", agg.label);
        BoundedValues expr;
        for (uint64_t t = 0; t < agg.terms.size(); ++t) {
          const Term& term = agg.terms[t];
          ApproxValues tv;
          if (term.from_dimension) {
            WN_ASSIGN_OR_RETURN(
                tv, FkJoinApproximate(*fk_col, dim->column(term.column),
                                      cands, dev));
          } else {
            tv = ProjectApproximate(fact.column(term.column), cands, dev);
          }
          BoundedValues tb = BoundedValues::FromApprox(tv);
          if (term.offset != 0 || term.sign < 0) {
            tb = AffineApproximate(tb, term.offset, term.sign, dev);
          }
          state.term_values.push_back(std::move(tv));
          expr = (t == 0) ? std::move(tb) : MulApproximate(expr, tb, dev);
        }
        if (expr.size() == 0) {  // sum over empty product: count-like
          expr.lo.assign(cands.size(), 1);
          expr.hi.assign(cands.size(), 1);
        }
        if (state.indicator != nullptr) {
          expr = MulIndicatorApproximate(expr, state.indicator->bounds, dev);
        }
        // Delta-refinement pre-pass (fused into this kernel's data pass):
        // when every per-row value is exact and only membership is in
        // doubt, accumulate exact per-pre-group candidate sums so the
        // refinement can subtract false positives instead of recomputing
        // everything (§III-A: plan-level optimization).
        {
          bool delta_ok = select_needs_refine && !group_has_residual &&
                          (state.indicator == nullptr ||
                           state.indicator->exact);
          for (const auto& term : agg.terms) {
            delta_ok &= !term.from_dimension;
          }
          for (const auto& tv : state.term_values) delta_ok &= tv.exact();
          if (delta_ok) {
            state.exact_candidate_sums.assign(
                std::max<uint64_t>(num_pre_groups, 1), 0);
            for (uint64_t i = 0; i < expr.size(); ++i) {
              // expr is exact per row here (indicator already applied).
              state.exact_candidate_sums[pre.group_ids[i]] +=
                  expr.lo[i] * agg.constant;
            }
          }
        }
        // Candidate-membership gate: a non-certain candidate may be a
        // selection false positive, so its contribution interval must
        // include 0 — even when its value approximation is exact. The gate
        // is the 0/1 interval [certain, 1], the same mechanism as the
        // dimension indicator (error bounds of the selection propagated to
        // the aggregation, Fig 6's rule generalized to sums).
        if (num_certain != cands.size()) {
          BoundedValues membership;
          membership.lo.resize(cands.size());
          membership.hi.assign(cands.size(), 1);
          for (uint64_t i = 0; i < cands.size(); ++i) {
            membership.lo[i] = certain[i];
          }
          expr = MulIndicatorApproximate(expr, membership, dev);
        }
        if (grouped) {
          state.group_bounds =
              GroupedSumApproximate(expr, pre.group_ids, num_pre_groups, dev);
        } else {
          // Global sums tree-reduce without conflicting writes.
          state.group_bounds = {SumApproximate(expr, dev)};
        }
        if (agg.constant != 1) {
          for (auto& b : state.group_bounds) b = b.Scale(agg.constant);
        }
        // The selection's false positives make even "exact" interval sums
        // over-approximate unless every candidate is certain.
        state.exact_from_approx =
            num_certain == cands.size() &&
            (state.indicator == nullptr || state.indicator->exact);
        for (const auto& b : state.group_bounds) {
          state.exact_from_approx &= b.IsExact();
        }
        break;
      }
    }
  }

  // --- the approximate answer (phase-A output) -----------------------------
  {
    exec.approx.row_count = CountApproximate(cands, num_certain);
    exec.approx.key_bounds.resize(num_pre_groups);
    exec.approx.agg_bounds.resize(num_pre_groups);
    for (uint64_t g = 0; g < num_pre_groups; ++g) {
      if (grouped) {
        const cs::oid_t row_id = cands.ids[pre.first_positions[g]];
        for (const auto& key_col : query.group_by) {
          const bwd::BwdColumn& col = fact.column(key_col);
          const uint64_t digit = col.approximation().Get(row_id);
          exec.approx.key_bounds[g].push_back(ValueBounds{
              col.spec().LowerBound(digit), col.spec().UpperBound(digit)});
        }
      }
      for (uint64_t a = 0; a < query.aggregates.size(); ++a) {
        const Aggregate& agg = query.aggregates[a];
        const AggState& state = agg_states[a];
        if (agg.func == AggFunc::kAvg) {
          exec.approx.agg_bounds[g].push_back(
              AvgBounds(state.group_bounds[g],
                        ValueBounds{group_count_lo[g], group_count_hi[g]}));
        } else if (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax) {
          exec.approx.agg_bounds[g].push_back(state.group_bounds[0]);
        } else {
          exec.approx.agg_bounds[g].push_back(state.group_bounds[g]);
        }
      }
    }
  }

  // The progressive-serving hook fires here: Phase A is complete, the
  // approximate answer (with its strict error bounds) exists, and no
  // refinement work has started.
  if (options.on_approximate) options.on_approximate(exec.approx);

  // --- phase boundary: what refinement consumes crosses the bus -----------
  {
    uint64_t bytes = cands.size() * sizeof(cs::oid_t);  // candidate ids
    if (select_needs_refine) {
      bytes += cands.size();  // certainty flags
      for (uint32_t p = 0; p < num_preds; ++p) {
        const auto& spec = fact.column(query.predicates[p].column).spec();
        bytes += cands.size() *
                 std::max<uint64_t>(bits::CeilDiv(spec.approximation_bits(), 8),
                                    1);
      }
    }
    if (grouped) bytes += cands.size() * sizeof(uint32_t);  // pre-group ids
    for (uint64_t a = 0; a < query.aggregates.size(); ++a) {
      if (agg_states[a].exact_from_approx && options.skip_exact_refinement) {
        continue;  // phase-A bounds are the exact result; nothing to ship
      }
      for (const auto& tv : agg_states[a].term_values) {
        bytes += cands.size() *
                 std::max<uint64_t>(bits::CeilDiv(bits::BitWidth(tv.error), 8),
                                    1);
      }
      if (agg_states[a].indicator != nullptr) bytes += cands.size();
    }
    dev->ChargeTransfer(bytes);
  }

  // ========================= Phase R: refine (measured) ====================
  plan.Phase("refinement subplan (host)");
  WallTimer host_timer;

  // Morsel-parallel execution context for every refinement operator: the
  // pool options.num_threads selects, plus the accounting that turns
  // "wall seconds" and "summed worker seconds" into the host_seconds /
  // host_cpu_seconds split of the breakdown.
  std::atomic<uint64_t> refine_worker_nanos{0};
  std::atomic<uint64_t> refine_loop_wall_nanos{0};
  MorselContext rctx;
  rctx.pool = PhaseRPool(options.num_threads);
  rctx.worker_nanos = &refine_worker_nanos;
  rctx.loop_wall_nanos = &refine_loop_wall_nanos;
  rctx.morsel_elems = options.morsel_elems;
  // The engine's own inline loops honor the override too (the operators
  // check ctx.morsel_elems themselves).
  auto morsel = [&](uint64_t bits_per_elem) {
    return rctx.morsel_elems != 0 ? rctx.morsel_elems
                                  : MorselElems(bits_per_elem);
  };

  // --- fused selection refinement (Algorithm 2) ----------------------------
  RefinedSelection refined;
  if (!select_needs_refine && options.skip_exact_refinement) {
    plan.Note("selection refinement skipped: all predicate bits resident");
    refined.ids = cands.ids;
    refined.positions.resize(cands.size());
    std::iota(refined.positions.begin(), refined.positions.end(), 0);
  } else {
    std::vector<PredicateRefinement> conjuncts;
    for (uint32_t p = 0; p < num_preds; ++p) {
      plan.Refine("uselect", query.predicates[p].column);
      conjuncts.push_back(PredicateRefinement{
          &fact.column(query.predicates[p].column), query.predicates[p].range,
          pred_values[p].has_value() ? &*pred_values[p] : nullptr});
    }
    refined = SelectRefine(cands, conjuncts, /*keep_values=*/false, rctx);
  }
  exec.num_refined = refined.ids.size();

  // --- grouping refinement --------------------------------------------------
  RefinedGrouping final_groups;
  if (grouped) {
    std::vector<const bwd::BwdColumn*> group_cols;
    for (const auto& g : query.group_by) group_cols.push_back(&fact.column(g));
    if (!group_needs_refine && options.skip_exact_refinement) {
      plan.Note("grouping refinement skipped: pre-groups are exact");
      final_groups.group_ids = pre.group_ids;
      final_groups.num_groups = pre.num_groups;
      for (uint64_t p : pre.first_positions) {
        final_groups.first_ids.push_back(cands.ids[p]);
      }
    } else {
      plan.Refine("group", "translucent join + residual subgroup");
      WN_ASSIGN_OR_RETURN(final_groups, GroupRefine(group_cols, pre, cands,
                                                    refined.ids, rctx));
    }
  } else {
    final_groups.group_ids.assign(refined.ids.size(), 0);
    final_groups.num_groups = 1;
  }
  const uint64_t num_groups = grouped ? final_groups.num_groups : 1;

  // --- per-row exact indicators (for filtered aggregates) ------------------
  std::map<std::string, std::vector<uint8_t>> exact_indicators;
  for (const auto& [key, ind] : indicators) {
    const CaseFilter& filter = indicator_filters.at(key);
    std::vector<uint8_t> flags(refined.ids.size());
    if (ind.exact) {
      ParallelForBlocks(rctx, refined.ids.size(), morsel(64),
                        [&](uint64_t b, uint64_t e, unsigned) {
                          for (uint64_t i = b; i < e; ++i) {
                            flags[i] = static_cast<uint8_t>(
                                ind.bounds.lo[refined.positions[i]]);
                          }
                        });
    } else {
      // Ambiguous rows need the dimension residual: ship the fk values of
      // the refined rows over the bus, then reconstruct host-side. Flag
      // writes are disjoint per morsel; the ambiguous count is a 1-group
      // accumulation.
      const bwd::BwdColumn& attr = dim->column(filter.dim_column);
      const std::vector<int64_t> amb_count = ParallelGroupedAccumulate(
          rctx, refined.ids.size(), 1, 128,
          [&](uint64_t b, uint64_t e, std::vector<int64_t>& p) {
            int64_t amb = 0;
            for (uint64_t i = b; i < e; ++i) {
              const uint64_t pos = refined.positions[i];
              if (ind.bounds.lo[pos] == ind.bounds.hi[pos]) {
                flags[i] = static_cast<uint8_t>(ind.bounds.lo[pos]);
              } else {
                ++amb;
                const uint64_t dim_oid = static_cast<uint64_t>(
                    fk_col->Reconstruct(refined.ids[i]) - query.join->fk_base);
                flags[i] =
                    filter.range.Contains(attr.Reconstruct(dim_oid)) ? 1 : 0;
              }
            }
            p[0] += amb;
          });
      const uint64_t ambiguous = static_cast<uint64_t>(amb_count[0]);
      dev->ChargeTransfer(ambiguous * (sizeof(cs::oid_t) + 1));
      plan.Refine("semijoin", filter.dim_column + " (" +
                                  std::to_string(ambiguous) +
                                  " ambiguous rows)");
    }
    exact_indicators.emplace(key, std::move(flags));
  }

  // --- aggregate refinement -------------------------------------------------
  std::vector<std::vector<int64_t>> agg_columns;  // [agg][group]
  std::vector<int64_t> group_counts(num_groups, 0);
  for (uint32_t g : final_groups.group_ids) ++group_counts[g];

  for (uint64_t a = 0; a < query.aggregates.size(); ++a) {
    const Aggregate& agg = query.aggregates[a];
    AggState& state = agg_states[a];

    if (state.exact_from_approx && options.skip_exact_refinement &&
        !group_needs_refine && !select_needs_refine &&
        agg.func != AggFunc::kMin && agg.func != AggFunc::kMax) {
      plan.Note("aggregate '" + agg.label + "' exact from approximation");
      std::vector<int64_t> exact(num_groups);
      for (uint64_t g = 0; g < num_groups; ++g) {
        exact[g] = state.group_bounds[g].lo;
      }
      agg_columns.push_back(std::move(exact));
      continue;
    }

    switch (agg.func) {
      case AggFunc::kCount: {
        plan.Refine("count", agg.label);
        const std::vector<uint8_t>* flags =
            agg.filter.has_value()
                ? &exact_indicators.at(indicator_key(*agg.filter))
                : nullptr;
        agg_columns.push_back(ParallelGroupedAccumulate(
            rctx, refined.ids.size(), num_groups, 40,
            [&](uint64_t b, uint64_t e, std::vector<int64_t>& p) {
              for (uint64_t i = b; i < e; ++i) {
                if (flags == nullptr || (*flags)[i]) {
                  ++p[final_groups.group_ids[i]];
                }
              }
            }));
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        const Term& t = agg.terms[0];
        const bwd::BwdColumn& col = fact.column(t.column);
        const AffineView affine{t.offset, t.sign};
        const bool want_max = (agg.func == AggFunc::kMax) == (t.sign >= 0);
        plan.Refine(agg.func == AggFunc::kMin ? "min" : "max", t.column);
        WN_ASSIGN_OR_RETURN(
            std::optional<int64_t> extremum,
            want_max ? MaxRefine(col, *state.extremum, refined.ids, rctx)
                     : MinRefine(col, *state.extremum, refined.ids, rctx));
        std::vector<int64_t> out(num_groups,
                                 extremum ? affine.Apply(*extremum) : 0);
        agg_columns.push_back(std::move(out));
        break;
      }
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        // Delta refinement: when the only approximation error is candidate
        // *membership* (the selection needed refining but every term,
        // group column and indicator is exact), the device aggregates all
        // candidates and the CPU merely subtracts the false positives'
        // contributions — work proportional to the error, not the data
        // ("waste not"). Falls through to full host recomputation when
        // destructive distributivity (§IV-G) forces it.
        if (!state.exact_candidate_sums.empty()) {
          plan.Refine("sum", agg.label + " (delta: false positives only)");
          // Per-row exact expression over the candidate list (the same
          // value the fused phase-A pass accumulated).
          auto expr_at = [&](uint64_t pos) -> int64_t {
            int64_t v = agg.constant;
            for (uint64_t t = 0; t < agg.terms.size(); ++t) {
              const Term& term = agg.terms[t];
              const int64_t exact = state.term_values[t].lower[pos];
              v *= (term.sign >= 0 ? term.offset + exact
                                   : term.offset - exact);
            }
            if (state.indicator != nullptr) {
              v *= state.indicator->bounds.lo[pos];
            }
            return v;
          };
          // Host work proportional to the false positives only: walk the
          // candidate positions not present in the (ascending) refined
          // position list and subtract their contributions. Each morsel
          // re-seeds its cursor with one binary search, accumulating into
          // per-worker deltas merged at the barrier.
          std::vector<int64_t> sums = state.exact_candidate_sums;
          {
            const cs::oid_t* rpos = refined.positions.data();
            const uint64_t nref = refined.positions.size();
            const std::vector<int64_t> deltas = ParallelGroupedAccumulate(
                rctx, cands.size(), sums.size(), 96,
                [&](uint64_t b, uint64_t e, std::vector<int64_t>& d) {
                  uint64_t next = static_cast<uint64_t>(
                      std::lower_bound(rpos, rpos + nref, b) - rpos);
                  for (uint64_t p = b; p < e; ++p) {
                    if (next < nref && rpos[next] == p) {
                      ++next;
                      continue;
                    }
                    d[pre.group_ids[p]] -= expr_at(p);
                  }
                });
            for (uint64_t g = 0; g < sums.size(); ++g) sums[g] += deltas[g];
          }
          // Map surviving pre-groups onto the final (compacted) groups.
          std::vector<int64_t> out(num_groups, 0);
          if (grouped) {
            for (uint64_t i = 0; i < refined.ids.size(); ++i) {
              const uint32_t fg = final_groups.group_ids[i];
              const uint32_t pg = pre.group_ids[refined.positions[i]];
              out[fg] = sums[pg];
            }
          } else if (num_groups == 1) {
            out[0] = sums[0];
          }
          agg_columns.push_back(std::move(out));
          break;
        }

        // Destructive distributivity (§IV-G): products are recomputed from
        // exact operand values host-side. Morsel-parallel with disjoint
        // per-row writes; the per-row arithmetic order is unchanged, so
        // the values are bit-identical to the serial pass.
        plan.Refine("sum", agg.label);
        std::vector<int64_t> values(refined.ids.size(), 1);
        const std::vector<uint8_t>* filter_flags =
            agg.filter.has_value()
                ? &exact_indicators.at(indicator_key(*agg.filter))
                : nullptr;
        ParallelForBlocks(
            rctx, refined.ids.size(), morsel(256),
            [&](uint64_t mb, uint64_t me, unsigned) {
              for (uint64_t t = 0; t < agg.terms.size(); ++t) {
                const Term& term = agg.terms[t];
                for (uint64_t i = mb; i < me; ++i) {
                  const cs::oid_t id = refined.ids[i];
                  int64_t exact;
                  if (term.from_dimension) {
                    const uint64_t dim_oid = static_cast<uint64_t>(
                        fk_col->Reconstruct(id) - query.join->fk_base);
                    exact = dim->column(term.column).Reconstruct(dim_oid);
                  } else {
                    // Invisible join of the shipped approximation output
                    // with the host residual (Algorithm 2's reconstruction
                    // step).
                    const bwd::BwdColumn& col = fact.column(term.column);
                    exact = state.term_values[t].lower[refined.positions[i]] +
                            static_cast<int64_t>(col.residual().Get(id));
                  }
                  values[i] *= (term.sign >= 0 ? term.offset + exact
                                               : term.offset - exact);
                }
              }
              for (uint64_t i = mb; i < me; ++i) {
                if (agg.constant != 1) values[i] *= agg.constant;
                if (filter_flags != nullptr && !(*filter_flags)[i]) {
                  values[i] = 0;
                }
              }
            });
        agg_columns.push_back(GroupedSumRefine(values, final_groups.group_ids,
                                               num_groups, rctx));
        break;
      }
    }
  }

  // --- result materialization ----------------------------------------------
  exec.result.selected_rows = refined.ids.size();
  for (const auto& name : query.group_by) {
    exec.result.key_names.push_back(name);
  }
  for (const auto& agg : query.aggregates) {
    exec.result.agg_labels.push_back(agg.label);
  }
  exec.result.group_counts = group_counts;
  exec.result.group_keys.resize(num_groups);
  exec.result.agg_values.resize(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    if (grouped) {
      const cs::oid_t id = final_groups.first_ids[g];
      for (const auto& key_col : query.group_by) {
        exec.result.group_keys[g].push_back(
            fact.column(key_col).Reconstruct(id));
      }
    }
    for (const auto& col : agg_columns) {
      exec.result.agg_values[g].push_back(col[g]);
    }
  }
  if (grouped) {
    // Reading the group representatives' approximation digits host-side is
    // a (tiny) transfer.
    dev->ChargeTransfer(num_groups * query.group_by.size() *
                        sizeof(uint32_t));
  }
  exec.result.SortByKeys();

  exec.breakdown.host_seconds = host_timer.Seconds();
  // CPU seconds consumed = serial wall (host wall minus the parallel
  // loops' wall) + the summed busy time of every worker inside the loops.
  // With num_threads == 1 the two accumulators agree and this collapses to
  // host_seconds.
  const double loop_wall = refine_loop_wall_nanos.load() * 1e-9;
  const double loop_busy = refine_worker_nanos.load() * 1e-9;
  exec.breakdown.host_cpu_seconds =
      std::max(0.0, exec.breakdown.host_seconds - loop_wall) + loop_busy;
  exec.breakdown.device_seconds = query_clock.device_seconds();
  exec.breakdown.bus_seconds = query_clock.bus_seconds();
  exec.plan_text = plan.Render();
  return exec;
}

}  // namespace detail

}  // namespace wastenot::core
