// QuerySpec: the declarative query fragment both engines execute.
//
// It covers the relational shape of every query in the paper's
// evaluation — conjunctive range selections, an optional foreign-key join
// to a dimension table, multi-attribute grouping, and aggregates over
// products of (affine transforms of) columns, optionally gated by a
// dimension predicate (TPC-H Q1, Q6, Q14; the spatial range count;
// the microbenchmark shapes).
//
// Values are fixed-point integers throughout (dates are day numbers,
// decimals are scaled, strings are ordered-dictionary codes), which is
// both what MonetDB does internally and what bitwise decomposition
// requires. `display_scale` records the fixed-point denominator for
// rendering only.

#ifndef WASTENOT_CORE_QUERY_H_
#define WASTENOT_CORE_QUERY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "columnstore/table.h"
#include "columnstore/types.h"
#include "core/bounds.h"

namespace wastenot::core {

/// A conjunct: column `column` must lie in `range`.
struct Predicate {
  std::string column;
  cs::RangePred range;
};

/// One multiplicative term of an aggregate expression: (offset + sign·col).
/// `from_dimension` marks columns of the joined dimension table.
struct Term {
  std::string column;
  int64_t offset = 0;
  int sign = +1;
  bool from_dimension = false;

  static Term Col(std::string column) { return Term{std::move(column), 0, +1, false}; }
  static Term OneMinus(std::string column, int64_t one) {
    return Term{std::move(column), one, -1, false};
  }
  static Term OnePlus(std::string column, int64_t one) {
    return Term{std::move(column), one, +1, false};
  }
};

/// CASE WHEN <dim_column in range> THEN <expr> ELSE 0 — the Q14 indicator.
struct CaseFilter {
  std::string dim_column;
  cs::RangePred range;
};

/// Aggregate functions supported by both engines.
enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate: func(constant · Π terms) [ FILTER (case filter) ].
struct Aggregate {
  AggFunc func = AggFunc::kSum;
  int64_t constant = 1;
  std::vector<Term> terms;  ///< empty for count(*)
  std::optional<CaseFilter> filter;
  std::string label;
  double display_scale = 1.0;

  static Aggregate CountStar(std::string label) {
    Aggregate a;
    a.func = AggFunc::kCount;
    a.label = std::move(label);
    return a;
  }
  static Aggregate SumOf(std::string column, std::string label,
                         double scale = 1.0) {
    Aggregate a;
    a.func = AggFunc::kSum;
    a.terms = {Term::Col(std::move(column))};
    a.label = std::move(label);
    a.display_scale = scale;
    return a;
  }
};

/// Foreign-key join: fact.fk_column references dimension row ids
/// (dimension primary keys are dense, so the pre-built FK index is the
/// identity — the paper's "pre-built hashtable in the form of a
/// foreign-key index" reduces to a positional gather).
struct JoinSpec {
  std::string fk_column;
  std::string dim_table;
  /// Offset between fk values and dimension oids (TPC-H keys start at 1).
  int64_t fk_base = 0;
};

/// The query.
struct QuerySpec {
  std::string table;
  std::vector<Predicate> predicates;
  std::optional<JoinSpec> join;
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  std::string name;  ///< for reports ("TPC-H Q6", ...)
};

/// One engine-agnostic result table: one row per group, canonical order.
struct QueryResult {
  std::vector<std::string> key_names;
  std::vector<std::string> agg_labels;
  std::vector<std::vector<int64_t>> group_keys;  ///< [group][key idx]
  std::vector<std::vector<int64_t>> agg_values;  ///< [group][agg idx]
  /// For avg aggregates, values hold the *sum*; counts divide at render
  /// time so both engines stay exactly comparable in integer space.
  std::vector<int64_t> group_counts;
  uint64_t selected_rows = 0;

  uint64_t num_groups() const { return group_keys.size(); }

  /// Sorts groups lexicographically by key tuple (canonical order for
  /// engine-vs-engine comparison).
  void SortByKeys();

  /// Renders an aligned text table (display_scales applied to averages
  /// and fixed-point sums). A result whose labels disagree with `aggs`
  /// renders a loud "schema mismatch" banner instead of silently applying
  /// the wrong scales.
  std::string ToString(const std::vector<Aggregate>& aggs) const;

  /// Schema-aware equality: two results only compare equal when their
  /// key_names and agg_labels agree too, so an engine-vs-engine comparison
  /// of different shapes fails loudly instead of matching on values alone.
  bool operator==(const QueryResult& other) const {
    return key_names == other.key_names && agg_labels == other.agg_labels &&
           group_keys == other.group_keys && agg_values == other.agg_values &&
           group_counts == other.group_counts;
  }
};

/// An approximate answer: the output of the approximation subplan alone
/// (paper §III advantage 4 — available before any refinement work).
struct ApproximateAnswer {
  std::vector<std::vector<ValueBounds>> key_bounds;  ///< [group][key idx]
  std::vector<std::vector<ValueBounds>> agg_bounds;  ///< [group][agg idx]
  ValueBounds row_count{0, 0};

  uint64_t num_groups() const { return key_bounds.size(); }

  /// True when every interval is a point (the approximation is exact —
  /// the all-device-resident fast path).
  bool exact() const;

  std::string ToString(const std::vector<std::string>& key_names,
                       const std::vector<Aggregate>& aggs) const;
};

}  // namespace wastenot::core

#endif  // WASTENOT_CORE_QUERY_H_
