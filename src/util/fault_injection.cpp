#include "util/fault_injection.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/env.h"

namespace wastenot::fault {

namespace {

struct Site {
  bool armed = false;
  Kind kind = Kind::kError;
  uint64_t trigger_hit = 1;
  uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
  // Armed-site count, readable without the mutex: the unarmed fast path
  // of Check/CheckWrite is one relaxed load.
  std::atomic<uint64_t> armed{0};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites may fire at exit
  return *r;
}

void ParseEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string spec = EnvString("WN_FAULTS", "");
    if (!spec.empty()) (void)ArmFromSpec(spec);
  });
}

/// What the current hit of `site` should do. Counts the hit.
std::optional<Kind> Fire(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Site& s = r.sites[site];
  ++s.hits;
  if (s.armed && s.hits == s.trigger_hit) return s.kind;
  return std::nullopt;
}

}  // namespace

void Arm(const std::string& site, Kind kind, uint64_t trigger_hit) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Site& s = r.sites[site];
  if (!s.armed) r.armed.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.kind = kind;
  s.trigger_hit = trigger_hit;
  s.hits = 0;
}

void Disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it != r.sites.end() && it->second.armed) {
    it->second.armed = false;
    r.armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.armed.store(0, std::memory_order_relaxed);
}

Status ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("WN_FAULTS entry '" + entry +
                                     "': expected site=kind[@hit]");
    }
    const std::string site = entry.substr(0, eq);
    std::string kind_str = entry.substr(eq + 1);
    uint64_t hit = 1;
    if (const size_t at = kind_str.find('@'); at != std::string::npos) {
      const std::string hit_str = kind_str.substr(at + 1);
      kind_str = kind_str.substr(0, at);
      char* parse_end = nullptr;
      hit = std::strtoull(hit_str.c_str(), &parse_end, 10);
      if (hit == 0 || parse_end == nullptr || *parse_end != '\0') {
        return Status::InvalidArgument("WN_FAULTS entry '" + entry +
                                       "': bad hit count");
      }
    }
    Kind kind;
    if (kind_str == "error") {
      kind = Kind::kError;
    } else if (kind_str == "crash") {
      kind = Kind::kCrash;
    } else if (kind_str == "torn") {
      kind = Kind::kTornWrite;
    } else {
      return Status::InvalidArgument("WN_FAULTS entry '" + entry +
                                     "': kind must be error|crash|torn");
    }
    Arm(site, kind, hit);
  }
  return Status::OK();
}

uint64_t Hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

bool AnyArmed() {
  ParseEnvOnce();
  return registry().armed.load(std::memory_order_relaxed) != 0;
}

Status Check(const char* site) {
  if (!AnyArmed()) return Status::OK();
  const std::optional<Kind> fire = Fire(site);
  if (!fire.has_value()) return Status::OK();
  if (*fire == Kind::kError) {
    return Status::IoError(std::string("injected fault at ") + site);
  }
  Crash();  // kCrash; kTornWrite degrades to a clean-boundary kill
}

WriteCheck CheckWrite(const char* site, size_t full_len) {
  WriteCheck result;
  if (!AnyArmed()) return result;
  const std::optional<Kind> fire = Fire(site);
  if (!fire.has_value()) return result;
  switch (*fire) {
    case Kind::kError:
      result.status = Status::IoError(std::string("injected fault at ") + site);
      return result;
    case Kind::kCrash:
      Crash();
    case Kind::kTornWrite:
      result.torn_bytes = full_len / 2;
      return result;
  }
  return result;
}

void Crash() { _exit(kCrashExitCode); }

}  // namespace wastenot::fault
