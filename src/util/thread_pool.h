// A fixed-size thread pool plus a ParallelFor convenience used by the
// simulated-GPU kernel launcher and by the multi-threaded CPU baseline.
//
// The pool is deliberately simple: tasks are std::function, submitted in
// batches, joined with a latch. Kernel launches are coarse (one task per
// worker, grid-stride inside), so per-task overhead is irrelevant.

#ifndef WASTENOT_UTIL_THREAD_POOL_H_
#define WASTENOT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wastenot {

/// Fixed-size worker pool. Thread-safe task submission; Wait() blocks the
/// caller until every task submitted so far has completed.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have run to completion.
  void Wait();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide default pool, sized to the hardware (or WN_THREADS).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signaled when tasks arrive / shutdown
  std::condition_variable idle_cv_;   // signaled when the pool drains
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  uint64_t in_flight_ = 0;  // queued + running
  bool shutdown_ = false;
};

/// Runs body(begin, end) over [0, n) split into roughly even contiguous
/// chunks, one per worker, on `pool`. Blocks until all chunks are done.
/// With n == 0 this is a no-op; with a single worker it runs inline.
void ParallelFor(ThreadPool& pool, uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body);

/// ParallelFor on the default pool.
void ParallelFor(uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body);

}  // namespace wastenot

#endif  // WASTENOT_UTIL_THREAD_POOL_H_
