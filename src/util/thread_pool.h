// A fixed-size thread pool plus the data-parallel loop helpers used by the
// simulated-GPU kernel launcher (ParallelFor) and by the morsel-parallel
// host refinement phase (ParallelForBlocks / ParallelForItems).
//
// The pool is deliberately simple: tasks are std::function, submitted in
// batches, joined with a latch. Kernel launches are coarse (one task per
// worker, grid-stride inside) and refinement morsels are large (~256 KiB of
// payload each), so per-task overhead is irrelevant.

#ifndef WASTENOT_UTIL_THREAD_POOL_H_
#define WASTENOT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wastenot {

/// Fixed-size worker pool. Thread-safe task submission; Wait() blocks the
/// caller until every task submitted so far has completed.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe, including from inside a worker task
  /// (tasks may submit follow-up tasks). The queue is unbounded, so Submit
  /// never blocks waiting for capacity; it may briefly contend on the pool
  /// mutex with other submitters and with workers picking up tasks, but it
  /// never waits for any task to *run*.
  void Submit(std::function<void()> task);

  /// Blocks until the pool is idle: every task submitted so far — plus any
  /// task those tasks transitively submit before finishing — has run to
  /// completion. Tasks submitted by other threads *after* Wait() observes
  /// an idle pool are not waited for. Do not call Wait() from inside a
  /// worker task (the pool would need the caller's thread to drain).
  /// Concurrent loops should prefer the per-call joins of ParallelFor /
  /// ParallelForItems, which only wait for their own work.
  void Wait();

  /// Number of worker threads (fixed at construction). Thread-safe.
  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide default pool, sized to the hardware (or WN_THREADS).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signaled when tasks arrive / shutdown
  std::condition_variable idle_cv_;   // signaled when the pool drains
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  uint64_t in_flight_ = 0;  // queued + running
  bool shutdown_ = false;
};

/// Runs body(begin, end) over [0, n) split into roughly even contiguous
/// chunks, one per worker, on `pool`. Blocks until all chunks are done.
/// With n == 0 this is a no-op; with a single worker it runs inline.
/// Chunks partition [0, n) exactly; concurrent ParallelFor calls on one
/// pool are safe and only join their own chunks.
void ParallelFor(ThreadPool& pool, uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body);

/// ParallelFor on the default pool.
void ParallelFor(uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body);

/// ----- morsel-driven parallelism (the Phase-R host side) -----------------

/// Morsel sizes are always rounded up to a multiple of this, so that a
/// morsel boundary is always a packed-codec block boundary (64 * width bits
/// is a whole number of words for every width — see bwd/packed_codec.h).
/// Workers on adjacent morsels then never touch the same packed word.
inline constexpr uint64_t kMorselAlignElems = 64;

/// Execution context for the morsel-parallel helpers, threaded through the
/// refinement operators. Default-constructed it means "run serially inline"
/// — every operator taking a MorselContext must produce bit-identical
/// output with and without a pool.
struct MorselContext {
  /// Pool to fan morsels out on; nullptr = run serially on the caller's
  /// thread (today's single-threaded behavior, used for ablation).
  ThreadPool* pool = nullptr;

  /// When non-null, ParallelForItems/ParallelForBlocks add the *summed*
  /// per-worker busy time of each loop here (nanoseconds). Under a pool
  /// this exceeds the loop's wall time; serially the two are equal.
  std::atomic<uint64_t>* worker_nanos = nullptr;

  /// When non-null, the helpers add each loop's *wall* time here
  /// (nanoseconds). host_cpu_seconds = host wall − Σ loop wall + Σ worker.
  std::atomic<uint64_t>* loop_wall_nanos = nullptr;

  /// Morsel size override for ParallelForBlocks callers that honor it
  /// (the refinement operators). 0 = let each operator pick its default
  /// (~256 KiB of packed payload). Tests shrink this to force inputs that
  /// straddle many morsels. Rounded up to a multiple of kMorselAlignElems.
  uint64_t morsel_elems = 0;

  /// Number of workers loops may use (>= the worker index any body sees).
  unsigned workers() const {
    return pool != nullptr ? std::max(1u, pool->num_threads()) : 1;
  }

  /// True when loops actually fan out (a pool with more than one worker).
  bool parallel() const { return workers() > 1; }
};

/// Rounds a requested morsel size up to a multiple of kMorselAlignElems
/// (minimum one block). ParallelForBlocks applies this internally; callers
/// that index per-morsel state by `begin / morsel` must apply it too.
inline uint64_t AlignMorsel(uint64_t morsel_elems) {
  const uint64_t m = morsel_elems > 0 ? morsel_elems : 1;
  return (m + kMorselAlignElems - 1) / kMorselAlignElems * kMorselAlignElems;
}

/// Morsel size (in elements) targeting ~256 KiB of packed payload for
/// elements `bits_per_elem` wide, rounded up to a multiple of
/// kMorselAlignElems. Large enough that per-morsel scheduling overhead
/// vanishes, small enough that n / morsel ≫ workers for imbalance-free
/// dynamic scheduling.
uint64_t MorselElems(uint64_t bits_per_elem);

/// Runs body(item, worker) for every item in [0, num_items), dynamically
/// self-scheduled: workers claim the next unclaimed item from a shared
/// atomic cursor, so late finishers steal what early finishers left (the
/// work-stealing-friendly chunking of morsel-driven execution). Blocks
/// until every item completed. Item order across workers is arbitrary;
/// `worker` is in [0, ctx.workers()) and is stable within one worker's
/// items, so bodies may accumulate into per-worker slots without locks.
/// With no pool (or one worker, or one item) the items run in order,
/// inline on the calling thread, with worker == 0.
void ParallelForItems(const MorselContext& ctx, uint64_t num_items,
                      const std::function<void(uint64_t, unsigned)>& body);

/// Runs body(begin, end, worker) over [0, n) split into contiguous morsels
/// of `morsel_elems` elements (rounded up to a multiple of
/// kMorselAlignElems; the final morsel may be shorter). Morsels partition
/// [0, n) exactly and are claimed dynamically (see ParallelForItems).
/// Because every interior boundary is a multiple of 64, bodies may use the
/// packed-codec block kernels and whole-word PackRange writes without any
/// cross-morsel races. Pass ctx.morsel_elems (when set) or an operator
/// default for `morsel_elems`.
void ParallelForBlocks(const MorselContext& ctx, uint64_t n,
                       uint64_t morsel_elems,
                       const std::function<void(uint64_t, uint64_t, unsigned)>& body);

}  // namespace wastenot

#endif  // WASTENOT_UTIL_THREAD_POOL_H_
