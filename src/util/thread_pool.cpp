#include "util/thread_pool.h"

#include <algorithm>
#include <latch>

#include "util/env.h"

namespace wastenot {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(
      static_cast<unsigned>(EnvInt64("WN_THREADS", 0)));
  return pool;
}

void ParallelFor(ThreadPool& pool, uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body) {
  if (n == 0) return;
  const uint64_t workers = std::max<uint64_t>(1, pool.num_threads());
  if (workers == 1 || n < 2) {
    body(0, n);
    return;
  }
  const uint64_t chunks = std::min<uint64_t>(workers, n);
  const uint64_t chunk = n / chunks;
  const uint64_t rem = n % chunks;
  // Per-call latch: concurrent ParallelFor calls on the same pool only wait
  // for their own chunks, not for each other's.
  std::latch done(static_cast<ptrdiff_t>(chunks));
  uint64_t begin = 0;
  for (uint64_t c = 0; c < chunks; ++c) {
    const uint64_t len = chunk + (c < rem ? 1 : 0);
    const uint64_t end = begin + len;
    pool.Submit([&body, &done, begin, end] {
      body(begin, end);
      done.count_down();
    });
    begin = end;
  }
  done.wait();
}

void ParallelFor(uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body) {
  ParallelFor(ThreadPool::Default(), n, body);
}

}  // namespace wastenot
