#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <latch>

#include "util/env.h"

namespace wastenot {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(
      static_cast<unsigned>(EnvInt64("WN_THREADS", 0)));
  return pool;
}

void ParallelFor(ThreadPool& pool, uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body) {
  if (n == 0) return;
  const uint64_t workers = std::max<uint64_t>(1, pool.num_threads());
  if (workers == 1 || n < 2) {
    body(0, n);
    return;
  }
  const uint64_t chunks = std::min<uint64_t>(workers, n);
  const uint64_t chunk = n / chunks;
  const uint64_t rem = n % chunks;
  // Per-call latch: concurrent ParallelFor calls on the same pool only wait
  // for their own chunks, not for each other's.
  std::latch done(static_cast<ptrdiff_t>(chunks));
  uint64_t begin = 0;
  for (uint64_t c = 0; c < chunks; ++c) {
    const uint64_t len = chunk + (c < rem ? 1 : 0);
    const uint64_t end = begin + len;
    pool.Submit([&body, &done, begin, end] {
      body(begin, end);
      done.count_down();
    });
    begin = end;
  }
  done.wait();
}

void ParallelFor(uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& body) {
  ParallelFor(ThreadPool::Default(), n, body);
}

namespace {

/// Monotonic nanoseconds for the MorselContext accounting.
uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

uint64_t MorselElems(uint64_t bits_per_elem) {
  constexpr uint64_t kTargetPayloadBits = 256 * 1024 * 8;  // ~256 KiB
  return AlignMorsel(kTargetPayloadBits /
                     std::max<uint64_t>(bits_per_elem, 1));
}

void ParallelForItems(const MorselContext& ctx, uint64_t num_items,
                      const std::function<void(uint64_t, unsigned)>& body) {
  if (num_items == 0) return;
  const uint64_t t0 = NowNanos();
  const unsigned workers = ctx.workers();
  if (workers == 1 || num_items == 1) {
    for (uint64_t i = 0; i < num_items; ++i) body(i, 0);
    const uint64_t spent = NowNanos() - t0;
    if (ctx.worker_nanos != nullptr) ctx.worker_nanos->fetch_add(spent);
    if (ctx.loop_wall_nanos != nullptr) ctx.loop_wall_nanos->fetch_add(spent);
    return;
  }
  // Dynamic self-scheduling: one task per worker, items claimed from a
  // shared cursor. Late finishers keep claiming what early finishers left,
  // so skew in per-item cost cannot idle the pool (the morsel-driven
  // scheduling of HyPer, minus NUMA placement).
  const unsigned tasks =
      static_cast<unsigned>(std::min<uint64_t>(workers, num_items));
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> busy_nanos{0};
  std::latch done(static_cast<ptrdiff_t>(tasks));
  for (unsigned t = 0; t < tasks; ++t) {
    ctx.pool->Submit([&body, &next, &busy_nanos, &done, num_items, t] {
      const uint64_t start = NowNanos();
      for (uint64_t i = next.fetch_add(1); i < num_items;
           i = next.fetch_add(1)) {
        body(i, t);
      }
      busy_nanos.fetch_add(NowNanos() - start);
      done.count_down();
    });
  }
  done.wait();
  if (ctx.worker_nanos != nullptr) ctx.worker_nanos->fetch_add(busy_nanos);
  if (ctx.loop_wall_nanos != nullptr) {
    ctx.loop_wall_nanos->fetch_add(NowNanos() - t0);
  }
}

void ParallelForBlocks(const MorselContext& ctx, uint64_t n,
                       uint64_t morsel_elems,
                       const std::function<void(uint64_t, uint64_t, unsigned)>&
                           body) {
  if (n == 0) return;
  const uint64_t morsel = AlignMorsel(morsel_elems);
  const uint64_t num_morsels = (n + morsel - 1) / morsel;
  ParallelForItems(ctx, num_morsels, [&body, n, morsel](uint64_t m, unsigned w) {
    const uint64_t begin = m * morsel;
    body(begin, std::min(n, begin + morsel), w);
  });
}

}  // namespace wastenot
