// Bit-manipulation helpers shared by the BWD storage layer and the
// approximate operators. All helpers are constexpr and branch-free where
// practical; they are on the hot path of every packed scan.

#ifndef WASTENOT_UTIL_BITS_H_
#define WASTENOT_UTIL_BITS_H_

#include <bit>
#include <cstdint>
#include <limits>

namespace wastenot::bits {

/// A mask with the `n` least-significant bits set. n in [0, 64].
constexpr uint64_t LowMask(uint32_t n) {
  return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/// Number of bits needed to represent `v` (BitWidth(0) == 0).
constexpr uint32_t BitWidth(uint64_t v) {
  return static_cast<uint32_t>(std::bit_width(v));
}

/// Rounds `v` up to the next multiple of `align` (align must be a power of 2).
constexpr uint64_t RoundUpPow2(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Ceiling division for unsigned integers.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// The approximation of `x` under `res_bits` residual bits: the value with
/// its `res_bits` least-significant bits cleared (paper §IV-B, appr(x)).
constexpr uint64_t Approximation(uint64_t x, uint32_t res_bits) {
  return x & ~LowMask(res_bits);
}

/// The residual of `x` under `res_bits` residual bits: its low bits.
constexpr uint64_t Residual(uint64_t x, uint32_t res_bits) {
  return x & LowMask(res_bits);
}

/// Bitwise concatenation of an approximation and a residual (paper's +bw).
constexpr uint64_t Reconstruct(uint64_t approximation, uint64_t residual,
                               uint32_t res_bits) {
  (void)res_bits;
  return approximation | residual;
}

/// Maximum positive error of an approximation with `res_bits` residual bits:
/// the true value lies in [appr, appr + ApproximationError(res_bits)].
constexpr uint64_t ApproximationError(uint32_t res_bits) {
  return LowMask(res_bits);
}

/// True if `v` is a power of two (0 is not).
constexpr bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace wastenot::bits

#endif  // WASTENOT_UTIL_BITS_H_
