// Deterministic named fault points for crash-consistency testing
// (DESIGN.md §9.4).
//
// The storage layer threads named sites through every durability boundary
// — WAL record write, WAL fsync, snapshot write/fsync/rename, epoch
// publication, device upload — and the recovery fuzz arms each one in a
// forked child, lets the child die there, and asserts the parent recovers
// to a bit-identical state. Three failure kinds:
//
//   kError     the site returns an injected IoError Status instead of
//              performing the operation (the "device OOM / poisoned
//              re-encode" degradation paths),
//   kCrash     the process exits immediately with kCrashExitCode — a
//              clean-boundary kill (power cut between syscalls),
//   kTornWrite write sites only: the caller is told to write a prefix of
//              the buffer, then kill the process — a torn tail the WAL
//              replay must detect by checksum.
//
// Sites are armed programmatically (Arm/Disarm, for tests) or from the
// WN_FAULTS environment variable: "site=kind@hit;site2=kind", where kind
// is error|crash|torn and @hit (1-based, default 1) picks which hit of
// the site fires. Unarmed processes pay one relaxed atomic load per site.

#ifndef WASTENOT_UTIL_FAULT_INJECTION_H_
#define WASTENOT_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace wastenot::fault {

/// What an armed site does when its trigger hit is reached.
enum class Kind : uint8_t { kError, kCrash, kTornWrite };

/// Exit code of a kCrash/kTornWrite kill — distinguishable from both a
/// clean exit and a sanitizer abort in the fuzz parent.
inline constexpr int kCrashExitCode = 0x5A;

/// Arms `site` to fire `kind` on its `trigger_hit`-th hit (1-based).
/// Re-arming an armed site replaces kind/trigger and resets its counter.
void Arm(const std::string& site, Kind kind, uint64_t trigger_hit = 1);

/// Disarms one site (its hit counter is kept).
void Disarm(const std::string& site);

/// Disarms every site and zeroes every hit counter.
void Reset();

/// Parses one WN_FAULTS-syntax spec ("a=crash@2;b=error") and arms it.
/// Exposed so tests can exercise the env syntax without a fresh process;
/// the environment variable itself is parsed once at first Check.
Status ArmFromSpec(const std::string& spec);

/// Hits recorded for `site` since the last Reset.
uint64_t Hits(const std::string& site);

/// True when any site is armed (after env parsing). One atomic load.
bool AnyArmed();

/// Non-write site check: counts a hit; returns an IoError when armed
/// kError fires, kills the process when kCrash (or kTornWrite, which
/// degrades to kCrash off write sites) fires, and returns OK otherwise.
Status Check(const char* site);

/// Write-site check result: either an injected error, or the number of
/// prefix bytes the caller must write before invoking Crash() (torn
/// write), or neither (proceed normally).
struct WriteCheck {
  Status status;  ///< non-OK: injected error, do not write
  std::optional<size_t> torn_bytes;  ///< set: write this prefix, then Crash()
};

/// Check for a site that is about to write `full_len` bytes. kError
/// returns the error; kCrash kills before any byte is written; kTornWrite
/// returns torn_bytes = full_len / 2 for the caller to write, after which
/// it must call Crash().
WriteCheck CheckWrite(const char* site, size_t full_len);

/// Immediate kill with kCrashExitCode (no atexit handlers, no flushing —
/// the moral equivalent of a power cut for everything not yet fsynced).
[[noreturn]] void Crash();

}  // namespace wastenot::fault

#endif  // WASTENOT_UTIL_FAULT_INJECTION_H_
