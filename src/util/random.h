// Deterministic, fast PRNGs for workload generation and property tests.
// SplitMix64 for seeding / single values, Xoshiro256** for bulk streams.
// Both are reproducible across platforms (unlike std::mt19937 distributions).

#ifndef WASTENOT_UTIL_RANDOM_H_
#define WASTENOT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wastenot {

/// SplitMix64: tiny, high-quality 64-bit generator. Used for seeding and
/// for cheap stateless hashing of indices.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless mix of a 64-bit value; useful to derive per-index randomness.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256**: fast general-purpose generator for bulk data generation.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Lemire's multiply-shift rejection-free-ish reduction; bias is
    // negligible for bounds << 2^64 and irrelevant for synthetic workloads.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// Fisher-Yates shuffle with a deterministic generator.
template <typename T>
void Shuffle(std::vector<T>& v, uint64_t seed) {
  Xoshiro256 rng(seed);
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.Below(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace wastenot

#endif  // WASTENOT_UTIL_RANDOM_H_
