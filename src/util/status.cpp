#include "util/status.h"

namespace wastenot {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kDeviceOutOfMemory:
      return "DeviceOutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPreconditionFailed:
      return "PreconditionFailed";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return rep_ ? rep_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace wastenot
