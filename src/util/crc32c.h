// CRC32C (Castagnoli) — the checksum behind every durable byte of the
// storage layer: WAL record framing and base-snapshot framing both carry
// it (src/storage/framing.h), so a torn or bit-flipped tail is detected
// on replay instead of being applied.
//
// The polynomial is Castagnoli's (0x1EDC6F41, reflected 0x82F63B78) — the
// one iSCSI, ext4 and the SSE4.2 `crc32` instruction implement — so the
// hardware path and the scalar table fallback produce identical sums.
// Dispatch is resolved once per process (like the packed codec's kernel
// tables): SSE4.2 when the CPU has it, scalar otherwise, and the
// WASTENOT_FORCE_SCALAR environment variable pins scalar for testing.

#ifndef WASTENOT_UTIL_CRC32C_H_
#define WASTENOT_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace wastenot::util {

/// CRC32C of `data[0, len)`, continuing from `crc` — pass 0 for a fresh
/// sum, or a previous return value to extend it over concatenated spans:
/// Crc32c(b, nb, Crc32c(a, na)) == Crc32c(ab, na + nb).
uint32_t Crc32c(const void* data, size_t len, uint32_t crc = 0);

/// Name of the implementation the dispatcher resolved ("sse4.2" or
/// "scalar").
const char* Crc32cImpl();

namespace detail {

/// The table-driven fallback, exposed so tests can pin hardware/scalar
/// equality on the machine they actually run on.
uint32_t Crc32cScalar(const void* data, size_t len, uint32_t crc);

}  // namespace detail

}  // namespace wastenot::util

#endif  // WASTENOT_UTIL_CRC32C_H_
