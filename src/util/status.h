// Status / StatusOr error model (Arrow / RocksDB idiom).
//
// Hot paths in this library do not throw exceptions; fallible functions
// return Status (or StatusOr<T> when they produce a value). Statuses are
// cheap to copy in the OK case (a single pointer-sized tag).

#ifndef WASTENOT_UTIL_STATUS_H_
#define WASTENOT_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace wastenot {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,       ///< host allocation failure
  kDeviceOutOfMemory, ///< simulated device arena exhausted
  kNotFound,
  kAlreadyExists,
  kUnsupported,
  kInternal,
  kPreconditionFailed, ///< an operator precondition (e.g. translucent-join
                       ///< order contract) does not hold
  kIoError,
};

/// Human-readable name of a StatusCode ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: OK, or a code plus a message.
///
/// The OK state stores no heap data; error states allocate a small record.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status DeviceOutOfMemory(std::string msg) {
    return Status(StatusCode::kDeviceOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PreconditionFailed(std::string msg) {
    return Status(StatusCode::kPreconditionFailed, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const noexcept { return rep_ == nullptr; }
  StatusCode code() const noexcept {
    return rep_ ? rep_->code : StatusCode::kOk;
  }
  /// Message of a non-OK status; empty for OK.
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool IsDeviceOutOfMemory() const {
    return code() == StatusCode::kDeviceOutOfMemory;
  }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsPreconditionFailed() const {
    return code() == StatusCode::kPreconditionFailed;
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // nullptr <=> OK
};

/// A value of type T or an error Status. Modeled after absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Error constructor; `status` must be non-OK.
  StatusOr(Status status) : var_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(var_).ok() &&
           "StatusOr constructed from OK status without a value");
  }
  /// Value constructors.
  StatusOr(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const noexcept { return std::holds_alternative<T>(var_); }
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  /// Access the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> var_;
};

}  // namespace wastenot

/// Propagates a non-OK Status to the caller.
#define WN_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::wastenot::Status _wn_st = (expr);         \
    if (!_wn_st.ok()) return _wn_st;            \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define WN_ASSIGN_OR_RETURN(lhs, expr)          \
  WN_ASSIGN_OR_RETURN_IMPL(                     \
      WN_STATUS_CONCAT(_wn_sor, __LINE__), lhs, expr)

#define WN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define WN_STATUS_CONCAT_IMPL(a, b) a##b
#define WN_STATUS_CONCAT(a, b) WN_STATUS_CONCAT_IMPL(a, b)

#endif  // WASTENOT_UTIL_STATUS_H_
