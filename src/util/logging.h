// Minimal leveled logging. Quiet by default; WN_LOG=debug enables verbose
// output. Not designed for multi-megabyte log streams — the library's normal
// reporting channel is return values, not logs.

#ifndef WASTENOT_UTIL_LOGGING_H_
#define WASTENOT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace wastenot {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace internal {

/// Current threshold; messages below it are dropped.
LogLevel LogThreshold();

void LogMessage(LogLevel level, const std::string& message);

/// Builds a message with stream syntax and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= LogThreshold()) LogMessage(level_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace wastenot

#define WN_LOG_DEBUG ::wastenot::internal::LogLine(::wastenot::LogLevel::kDebug)
#define WN_LOG_INFO ::wastenot::internal::LogLine(::wastenot::LogLevel::kInfo)
#define WN_LOG_WARN ::wastenot::internal::LogLine(::wastenot::LogLevel::kWarn)
#define WN_LOG_ERROR ::wastenot::internal::LogLine(::wastenot::LogLevel::kError)

#endif  // WASTENOT_UTIL_LOGGING_H_
