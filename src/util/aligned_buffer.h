// Cache-line-aligned raw buffers. BAT tails, packed vectors and device
// arenas all sit on 64-byte-aligned storage so that scans stride cleanly
// and the simulated-GPU cost model can reason in whole cache lines.

#ifndef WASTENOT_UTIL_ALIGNED_BUFFER_H_
#define WASTENOT_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace wastenot {

/// Owning, 64-byte-aligned, zero-initialized byte buffer.
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;

  /// Allocates `size` bytes (rounded up to the alignment), zero-filled.
  explicit AlignedBuffer(size_t size) { Reset(size); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { Free(); }

  /// Re-allocates to `size` bytes; previous contents are discarded.
  void Reset(size_t size) {
    Free();
    if (size == 0) return;
    size_t padded = (size + kAlignment - 1) / kAlignment * kAlignment;
    data_ = static_cast<uint8_t*>(std::aligned_alloc(kAlignment, padded));
    if (data_ != nullptr) {
      std::memset(data_, 0, padded);
      size_ = size;
    }
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace wastenot

#endif  // WASTENOT_UTIL_ALIGNED_BUFFER_H_
