// Wall-clock timing helpers for benchmarks and the executor's phase
// breakdowns.

#ifndef WASTENOT_UTIL_TIMER_H_
#define WASTENOT_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace wastenot {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time across multiple Start/Stop intervals; used by the
/// executor to attribute time to CPU / device / bus phases.
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_seconds_ += timer_.Seconds(); }
  void Add(double seconds) { total_seconds_ += seconds; }
  void Reset() { total_seconds_ = 0; }
  double Seconds() const { return total_seconds_; }

 private:
  WallTimer timer_;
  double total_seconds_ = 0;
};

}  // namespace wastenot

#endif  // WASTENOT_UTIL_TIMER_H_
