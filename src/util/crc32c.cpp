#include "util/crc32c.h"

#include <array>
#include <cstring>

#include "util/env.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <nmmintrin.h>
#define WASTENOT_CRC32C_X86 1
#endif

namespace wastenot::util {

namespace {

constexpr uint32_t kPolyReflected = 0x82F63B78u;

// Slice-by-4 tables: table[0] is the classic byte-at-a-time table,
// tables 1-3 advance a byte through 1-3 additional zero bytes so the word
// loop folds four input bytes per iteration.
constexpr std::array<std::array<uint32_t, 256>, 4> MakeTables() {
  std::array<std::array<uint32_t, 256>, 4> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPolyReflected ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = t[0][i];
    for (size_t slice = 1; slice < 4; ++slice) {
      c = t[0][c & 0xFF] ^ (c >> 8);
      t[slice][i] = c;
    }
  }
  return t;
}

constexpr auto kTables = MakeTables();

}  // namespace

namespace detail {

uint32_t Crc32cScalar(const void* data, size_t len, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (len >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    c ^= word;
    c = kTables[3][c & 0xFF] ^ kTables[2][(c >> 8) & 0xFF] ^
        kTables[1][(c >> 16) & 0xFF] ^ kTables[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace detail

namespace {

#ifdef WASTENOT_CRC32C_X86
__attribute__((target("sse4.2"))) uint32_t Crc32cHw(const void* data,
                                                    size_t len, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t c = ~crc;
  // Align to 8 bytes, then fold a word at a time.
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *p++);
    --len;
  }
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *p++);
  }
  return ~static_cast<uint32_t>(c);
}
#endif

struct Impl {
  uint32_t (*fn)(const void*, size_t, uint32_t);
  const char* name;
};

Impl Resolve() {
#ifdef WASTENOT_CRC32C_X86
  if (!EnvBool("WASTENOT_FORCE_SCALAR", false) &&
      __builtin_cpu_supports("sse4.2")) {
    return Impl{&Crc32cHw, "sse4.2"};
  }
#endif
  return Impl{&detail::Crc32cScalar, "scalar"};
}

const Impl& Dispatch() {
  static const Impl impl = Resolve();
  return impl;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t crc) {
  return Dispatch().fn(data, len, crc);
}

const char* Crc32cImpl() { return Dispatch().name; }

}  // namespace wastenot::util
