// Environment-variable configuration helpers. Benchmarks and examples are
// scaled through WN_* environment variables so the same binaries run both as
// quick smoke tests and as full-scale reproductions.

#ifndef WASTENOT_UTIL_ENV_H_
#define WASTENOT_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace wastenot {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparsable. Accepts plain integers with an optional k/m/g suffix
/// (powers of 1000) or Ki/Mi/Gi (powers of 1024), e.g. WN_SCALE_MICRO=10m.
int64_t EnvInt64(const char* name, int64_t fallback);

/// Reads a double environment variable; returns `fallback` when unset.
double EnvDouble(const char* name, double fallback);

/// Reads a string environment variable; returns `fallback` when unset.
std::string EnvString(const char* name, const std::string& fallback);

/// True when the variable is set to 1/true/on/yes (case-insensitive).
bool EnvBool(const char* name, bool fallback);

}  // namespace wastenot

#endif  // WASTENOT_UTIL_ENV_H_
