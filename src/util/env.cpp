#include "util/env.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace wastenot {

namespace {

bool ParseSuffixed(const char* s, int64_t* out) {
  char* end = nullptr;
  long long base = std::strtoll(s, &end, 10);
  if (end == s) return false;
  int64_t mult = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k':
        mult = (end[1] == 'i' || end[1] == 'I') ? 1024LL : 1000LL;
        break;
      case 'm':
        mult = (end[1] == 'i' || end[1] == 'I') ? 1024LL * 1024
                                                : 1000LL * 1000;
        break;
      case 'g':
        mult = (end[1] == 'i' || end[1] == 'I') ? 1024LL * 1024 * 1024
                                                : 1000LL * 1000 * 1000;
        break;
      default:
        return false;
    }
  }
  *out = static_cast<int64_t>(base) * mult;
  return true;
}

}  // namespace

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int64_t out = 0;
  return ParseSuffixed(v, &out) ? out : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double out = std::strtod(v, &end);
  return end == v ? fallback : out;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

bool EnvBool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::string s(v);
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
  if (s == "0" || s == "false" || s == "off" || s == "no") return false;
  return fallback;
}

}  // namespace wastenot
