#include "util/logging.h"

#include <cstdio>
#include <mutex>

#include "util/env.h"

namespace wastenot::internal {

LogLevel LogThreshold() {
  static LogLevel threshold = [] {
    std::string s = EnvString("WN_LOG", "warn");
    if (s == "debug") return LogLevel::kDebug;
    if (s == "info") return LogLevel::kInfo;
    if (s == "error") return LogLevel::kError;
    return LogLevel::kWarn;
  }();
  return threshold;
}

void LogMessage(LogLevel level, const std::string& message) {
  static std::mutex mu;
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[wn %s] %s\n", kNames[static_cast<int>(level)],
               message.c_str());
}

}  // namespace wastenot::internal
